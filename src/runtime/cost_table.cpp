#include "runtime/cost_table.h"

#include <stdexcept>

#include "models/zoo.h"

namespace xrbench::runtime {

CostTable::CostTable(const hw::AcceleratorSystem& system,
                     const costmodel::AnalyticalCostModel& cost_model)
    : num_sub_accels_(system.sub_accels.size()) {
  if (num_sub_accels_ == 0) {
    throw std::invalid_argument("CostTable: accelerator system is empty");
  }
  num_levels_.reserve(num_sub_accels_);
  nominal_level_.reserve(num_sub_accels_);
  level_offset_.reserve(num_sub_accels_);
  nominal_offset_.reserve(num_sub_accels_);
  for (const auto& sa : system.sub_accels) {
    if (!sa.dvfs.valid() || !sa.dvfs.anchored_at(sa.clock_ghz)) {
      // A DVFS table anchored at a different clock would make the
      // "nominal" row silently diverge from the fixed-clock costs.
      throw std::invalid_argument(
          "CostTable: invalid or mis-anchored DVFS table on "
          "sub-accelerator '" +
          sa.id + "'");
    }
    level_offset_.push_back(total_levels_);
    num_levels_.push_back(sa.dvfs.num_levels());
    nominal_level_.push_back(sa.dvfs.levels.empty() ? 0
                                                    : sa.dvfs.nominal_level);
    nominal_offset_.push_back(level_offset_.back() + nominal_level_.back());
    total_levels_ += num_levels_.back();
  }

  costs_.resize(models::kNumTasks * total_levels_);
  task_layers_.resize(models::kNumTasks);
  prefix_base_.resize(models::kNumTasks);
  std::size_t prefix_entries = 0;
  for (models::TaskId task : models::all_tasks()) {
    const std::size_t t = models::task_index(task);
    task_layers_[t] = models::model_graph(task).num_layers();
    prefix_base_[t] = prefix_entries;
    prefix_entries += (task_layers_[t] + 1) * total_levels_;
  }
  lat_prefix_.resize(prefix_entries);
  energy_prefix_.resize(prefix_entries);
  static_prefix_.resize(prefix_entries);
  // One scratch for the whole build loop: after the first (task, sub-accel)
  // evaluation at the largest shape, every later model-memo miss reuses its
  // lanes and layer lists instead of re-allocating them per build.
  costmodel::AllLevelsScratch scratch;
  for (models::TaskId task : models::all_tasks()) {
    const auto& graph = models::model_graph(task);
    const std::size_t t = models::task_index(task);
    const std::size_t row = t * total_levels_;
    const std::size_t num_layers = task_layers_[t];
    for (std::size_t sa = 0; sa < num_sub_accels_; ++sa) {
      // One memoized all-levels evaluation per (task, sub-accelerator): the
      // batched kernel walks the layer list once for the whole DVFS ladder
      // (bit-identical to per-level model_cost_at, test-enforced), and the
      // model memo makes repeated designs across sweep points free.
      const auto all = cost_model.cached_model_cost_all_levels(
          graph, system.sub_accels[sa], &scratch);
      for (std::size_t lvl = 0; lvl < num_levels_[sa]; ++lvl) {
        const std::size_t cell = level_offset_[sa] + lvl;
        const auto& mc = (*all)[lvl];
        costs_[row + cell] =
            ExecutionCost{mc.latency_ms, mc.energy_mj, mc.static_energy_mj,
                          mc.avg_utilization};
        // Prefix sums in the same left-to-right order as model_cost_at's
        // totals, so prefix[num_layers] == the whole-model cost bit-exactly
        // (a resume at layer 0 is indistinguishable from a fresh dispatch).
        const std::size_t base = prefix_base_[t] + cell * (num_layers + 1);
        double lat = 0.0, energy = 0.0, stat = 0.0;
        lat_prefix_[base] = 0.0;
        energy_prefix_[base] = 0.0;
        static_prefix_[base] = 0.0;
        for (std::size_t k = 0; k < num_layers; ++k) {
          lat += mc.layers[k].latency_ms;
          energy += mc.layers[k].energy_mj;
          stat += mc.layers[k].static_energy_mj;
          lat_prefix_[base + k + 1] = lat;
          energy_prefix_[base + k + 1] = energy;
          static_prefix_[base + k + 1] = stat;
        }
      }
    }
  }
  idle_power_w_.resize(total_levels_);
  for (std::size_t sa = 0; sa < num_sub_accels_; ++sa) {
    for (std::size_t lvl = 0; lvl < num_levels_[sa]; ++lvl) {
      idle_power_w_[level_offset_[sa] + lvl] =
          cost_model.idle_power_mw(system.sub_accels[sa], lvl) / 1000.0;
    }
  }
}

double CostTable::idle_power_w(std::size_t sub_accel,
                               std::size_t level) const {
  check_sub_accel(sub_accel);
  if (level >= num_levels_[sub_accel]) {
    throw std::out_of_range("CostTable::idle_power_w: level out of range");
  }
  return idle_power_w_[level_offset_[sub_accel] + level];
}

void CostTable::check_sub_accel(std::size_t sub_accel) const {
  if (sub_accel >= num_sub_accels_) {
    throw std::out_of_range("CostTable: sub_accel out of range");
  }
}

const ExecutionCost& CostTable::cost(models::TaskId task,
                                     std::size_t sub_accel,
                                     std::size_t level) const {
  check_sub_accel(sub_accel);
  if (level >= num_levels_[sub_accel]) {
    throw std::out_of_range("CostTable::cost: DVFS level out of range");
  }
  return costs_[models::task_index(task) * total_levels_ +
                level_offset_[sub_accel] + level];
}

std::size_t CostTable::prefix_index(models::TaskId task,
                                    std::size_t sub_accel, std::size_t level,
                                    std::size_t layer) const {
  check_sub_accel(sub_accel);
  if (level >= num_levels_[sub_accel]) {
    throw std::out_of_range("CostTable: DVFS level out of range");
  }
  const std::size_t t = models::task_index(task);
  if (layer > task_layers_[t]) {
    throw std::out_of_range("CostTable: layer prefix out of range");
  }
  return prefix_base_[t] +
         (level_offset_[sub_accel] + level) * (task_layers_[t] + 1) + layer;
}

std::size_t CostTable::completed_layers(models::TaskId task,
                                        std::size_t sub_accel,
                                        std::size_t level,
                                        std::size_t from_layer,
                                        double elapsed_ms) const {
  const std::size_t t = models::task_index(task);
  const std::size_t num_layers = task_layers_[t];
  const std::size_t base = prefix_index(task, sub_accel, level, 0);
  if (from_layer > num_layers) {
    throw std::out_of_range("CostTable::completed_layers: from_layer");
  }
  const double start = lat_prefix_[base + from_layer];
  std::size_t k = from_layer;
  while (k < num_layers && lat_prefix_[base + k + 1] - start <= elapsed_ms) {
    ++k;
  }
  return k;
}

std::size_t CostTable::fastest_sub_accel(models::TaskId task) const {
  std::size_t best = 0;
  for (std::size_t sa = 1; sa < num_sub_accels_; ++sa) {
    if (latency_ms(task, sa) < latency_ms(task, best)) best = sa;
  }
  return best;
}

}  // namespace xrbench::runtime
