#include "runtime/cost_table.h"

#include <stdexcept>

#include "models/zoo.h"

namespace xrbench::runtime {

CostTable::CostTable(const hw::AcceleratorSystem& system,
                     const costmodel::AnalyticalCostModel& cost_model)
    : num_sub_accels_(system.sub_accels.size()) {
  if (num_sub_accels_ == 0) {
    throw std::invalid_argument("CostTable: accelerator system is empty");
  }
  num_levels_.reserve(num_sub_accels_);
  nominal_level_.reserve(num_sub_accels_);
  level_offset_.reserve(num_sub_accels_);
  nominal_offset_.reserve(num_sub_accels_);
  for (const auto& sa : system.sub_accels) {
    if (!sa.dvfs.valid() || !sa.dvfs.anchored_at(sa.clock_ghz)) {
      // A DVFS table anchored at a different clock would make the
      // "nominal" row silently diverge from the fixed-clock costs.
      throw std::invalid_argument(
          "CostTable: invalid or mis-anchored DVFS table on "
          "sub-accelerator '" +
          sa.id + "'");
    }
    level_offset_.push_back(total_levels_);
    num_levels_.push_back(sa.dvfs.num_levels());
    nominal_level_.push_back(sa.dvfs.levels.empty() ? 0
                                                    : sa.dvfs.nominal_level);
    nominal_offset_.push_back(level_offset_.back() + nominal_level_.back());
    total_levels_ += num_levels_.back();
  }

  costs_.resize(models::kNumTasks * total_levels_);
  for (models::TaskId task : models::all_tasks()) {
    const auto& graph = models::model_graph(task);
    const std::size_t row = models::task_index(task) * total_levels_;
    for (std::size_t sa = 0; sa < num_sub_accels_; ++sa) {
      for (std::size_t lvl = 0; lvl < num_levels_[sa]; ++lvl) {
        const auto mc =
            cost_model.model_cost_at(graph, system.sub_accels[sa], lvl);
        costs_[row + level_offset_[sa] + lvl] =
            ExecutionCost{mc.latency_ms, mc.energy_mj, mc.static_energy_mj,
                          mc.avg_utilization};
      }
    }
  }
  idle_power_w_.resize(total_levels_);
  for (std::size_t sa = 0; sa < num_sub_accels_; ++sa) {
    for (std::size_t lvl = 0; lvl < num_levels_[sa]; ++lvl) {
      idle_power_w_[level_offset_[sa] + lvl] =
          cost_model.idle_power_mw(system.sub_accels[sa], lvl) / 1000.0;
    }
  }
}

double CostTable::idle_power_w(std::size_t sub_accel,
                               std::size_t level) const {
  check_sub_accel(sub_accel);
  if (level >= num_levels_[sub_accel]) {
    throw std::out_of_range("CostTable::idle_power_w: level out of range");
  }
  return idle_power_w_[level_offset_[sub_accel] + level];
}

void CostTable::check_sub_accel(std::size_t sub_accel) const {
  if (sub_accel >= num_sub_accels_) {
    throw std::out_of_range("CostTable: sub_accel out of range");
  }
}

const ExecutionCost& CostTable::cost(models::TaskId task,
                                     std::size_t sub_accel,
                                     std::size_t level) const {
  check_sub_accel(sub_accel);
  if (level >= num_levels_[sub_accel]) {
    throw std::out_of_range("CostTable::cost: DVFS level out of range");
  }
  return costs_[models::task_index(task) * total_levels_ +
                level_offset_[sub_accel] + level];
}

std::size_t CostTable::fastest_sub_accel(models::TaskId task) const {
  std::size_t best = 0;
  for (std::size_t sa = 1; sa < num_sub_accels_; ++sa) {
    if (latency_ms(task, sa) < latency_ms(task, best)) best = sa;
  }
  return best;
}

}  // namespace xrbench::runtime
