#include "runtime/cost_table.h"

#include <stdexcept>

#include "models/zoo.h"

namespace xrbench::runtime {

CostTable::CostTable(const hw::AcceleratorSystem& system,
                     const costmodel::AnalyticalCostModel& cost_model)
    : num_sub_accels_(system.sub_accels.size()) {
  if (num_sub_accels_ == 0) {
    throw std::invalid_argument("CostTable: accelerator system is empty");
  }
  costs_.resize(models::kNumTasks * num_sub_accels_);
  for (models::TaskId task : models::all_tasks()) {
    const auto& graph = models::model_graph(task);
    for (std::size_t sa = 0; sa < num_sub_accels_; ++sa) {
      const auto mc = cost_model.model_cost(graph, system.sub_accels[sa]);
      costs_[models::task_index(task) * num_sub_accels_ + sa] =
          ExecutionCost{mc.latency_ms, mc.energy_mj, mc.avg_utilization};
    }
  }
}

const ExecutionCost& CostTable::cost(models::TaskId task,
                                     std::size_t sub_accel) const {
  if (sub_accel >= num_sub_accels_) {
    throw std::out_of_range("CostTable::cost: sub_accel out of range");
  }
  return costs_[models::task_index(task) * num_sub_accels_ + sub_accel];
}

std::size_t CostTable::fastest_sub_accel(models::TaskId task) const {
  std::size_t best = 0;
  for (std::size_t sa = 1; sa < num_sub_accels_; ++sa) {
    if (latency_ms(task, sa) < latency_ms(task, best)) best = sa;
  }
  return best;
}

}  // namespace xrbench::runtime
