#include "workload/scenario_io.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "runtime/fault_plan.h"
#include "util/ini.h"
#include "util/table.h"
#include "workload/input_source.h"
#include "workload/unit_model.h"

namespace xrbench::workload {
namespace {

DependencyType parse_dependency(const std::string& s) {
  if (s == "data") return DependencyType::kData;
  if (s == "control") return DependencyType::kControl;
  throw std::invalid_argument(
      "scenario config: dependency must be 'data' or 'control', got '" + s +
      "'");
}

ScenarioModel parse_model_section(const util::IniDocument::Section& sec) {
  ScenarioModel m;
  m.task = models::parse_task_code(sec.get("task"));
  m.target_fps = sec.get_double("fps");
  const auto& src = input_source(driving_source(m.task));
  if (m.target_fps <= 0.0 || m.target_fps > src.fps) {
    throw std::invalid_argument(
        "scenario config: fps for " + std::string(models::task_code(m.task)) +
        " must be in (0, " + std::to_string(src.fps) + "]");
  }
  if (sec.has("depends_on")) {
    m.depends_on = models::parse_task_code(sec.get("depends_on"));
    m.dependency = parse_dependency(sec.get("dependency"));
    m.trigger_probability = sec.has("trigger_probability")
                                ? sec.get_double("trigger_probability")
                                : 1.0;
    if (m.trigger_probability < 0.0 || m.trigger_probability > 1.0) {
      throw std::invalid_argument(
          "scenario config: trigger_probability must be in [0,1]");
    }
  }
  return m;
}

/// Whole-scenario validations shared by the single-scenario and program
/// parsers: at least one model, no duplicate tasks, dependencies reference
/// active models, data-dependent rates match their upstream.
void validate_parsed_scenario(const UsageScenario& scenario) {
  if (scenario.models.empty()) {
    throw std::invalid_argument(
        "scenario config: at least one [model] section is required");
  }
  std::set<models::TaskId> seen;
  for (const auto& m : scenario.models) {
    if (!seen.insert(m.task).second) {
      throw std::invalid_argument("scenario config: duplicate task " +
                                  std::string(models::task_code(m.task)));
    }
  }
  for (const auto& m : scenario.models) {
    if (m.depends_on && scenario.find(*m.depends_on) == nullptr) {
      throw std::invalid_argument(
          "scenario config: " + std::string(models::task_code(m.task)) +
          " depends on inactive model " +
          std::string(models::task_code(*m.depends_on)));
    }
  }
  validate_dependency_rates(scenario);
}

void append_scenario_sections(util::IniDocument& doc,
                              const UsageScenario& scenario) {
  auto& head = doc.add_section("scenario");
  head.set("name", scenario.name);
  head.set("description", scenario.description);
  for (const auto& m : scenario.models) {
    auto& sec = doc.add_section("model");
    sec.set("task", models::task_code(m.task));
    sec.set_double("fps", m.target_fps);
    if (m.depends_on) {
      sec.set("depends_on", models::task_code(*m.depends_on));
      sec.set("dependency", dependency_type_name(m.dependency));
      sec.set_double("trigger_probability", m.trigger_probability);
    }
  }
}

bool same_scenario(const UsageScenario& a, const UsageScenario& b) {
  if (a.name != b.name || a.models.size() != b.models.size()) return false;
  for (std::size_t i = 0; i < a.models.size(); ++i) {
    const auto& ma = a.models[i];
    const auto& mb = b.models[i];
    if (ma.task != mb.task || ma.target_fps != mb.target_fps ||
        ma.depends_on != mb.depends_on || ma.dependency != mb.dependency ||
        ma.trigger_probability != mb.trigger_probability) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string to_config_text(const UsageScenario& scenario) {
  util::IniDocument doc;
  append_scenario_sections(doc, scenario);
  return doc.to_string();
}

UsageScenario from_config_text(const std::string& text) {
  const auto doc = util::IniDocument::parse(text);
  const auto& head = doc.section("scenario");

  UsageScenario scenario;
  scenario.name = head.get("name");
  scenario.description = head.get_or("description", "");
  for (const auto* sec : doc.sections("model")) {
    scenario.models.push_back(parse_model_section(*sec));
  }
  validate_parsed_scenario(scenario);
  return scenario;
}

void save_scenario(const UsageScenario& scenario,
                   const std::filesystem::path& path) {
  util::IniDocument::parse(to_config_text(scenario)).save(path);
}

UsageScenario load_scenario(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_scenario: cannot read " + path.string());
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return from_config_text(ss.str());
}

std::string to_config_text(const ScenarioProgram& program) {
  validate_program(program);
  util::IniDocument doc;
  auto& head = doc.add_section("program");
  head.set("name", program.name);
  head.set("description", program.description);
  if (!program.scheduler.empty()) head.set("scheduler", program.scheduler);
  if (!program.governor.empty()) head.set("governor", program.governor);
  if (!program.admission.empty()) head.set("admission", program.admission);
  // Optional [faults] profile; a default spec writes nothing so fault-free
  // programs round-trip byte-identically to pre-fault output.
  runtime::write_fault_section(doc, program.faults);

  // Inline every distinct phase scenario (first definition wins), so the
  // file is self-contained. Two different scenarios may not share a name —
  // the phase reference would be ambiguous.
  std::vector<const UsageScenario*> inlined;
  for (const auto& phase : program.phases) {
    const UsageScenario* existing = nullptr;
    for (const auto* s : inlined) {
      if (s->name == phase.scenario.name) existing = s;
    }
    if (existing != nullptr) {
      if (!same_scenario(*existing, phase.scenario)) {
        throw std::invalid_argument(
            "program config: two different scenarios named '" +
            phase.scenario.name + "'");
      }
      continue;
    }
    inlined.push_back(&phase.scenario);
    append_scenario_sections(doc, phase.scenario);
  }

  for (const auto& phase : program.phases) {
    auto& sec = doc.add_section("phase");
    sec.set("scenario", phase.scenario.name);
    // Exact (max_digits10) so parsed programs replay bit-identically.
    sec.set("duration_ms", util::fmt_double_exact(phase.duration_ms));
    sec.set_int("seed_offset", static_cast<std::int64_t>(phase.seed_offset));
  }
  return doc.to_string();
}

std::vector<ScenarioProgram> programs_from_document(
    const util::IniDocument& doc) {
  // First pass: collect inline scenario definitions in section order —
  // each [scenario] header owns the [model] sections that follow it.
  // Inline definitions are file-global: every program's phases may
  // reference any of them.
  std::vector<UsageScenario> inline_scenarios;
  for (const auto& sec : doc.all_sections()) {
    if (sec.name == "scenario") {
      UsageScenario s;
      s.name = sec.get("name");
      s.description = sec.get_or("description", "");
      for (const auto& existing : inline_scenarios) {
        if (existing.name == s.name) {
          throw std::invalid_argument(
              "program config: duplicate inline scenario '" + s.name + "'");
        }
      }
      inline_scenarios.push_back(std::move(s));
    } else if (sec.name == "model") {
      if (inline_scenarios.empty()) {
        throw std::invalid_argument(
            "program config: [model] section before any [scenario] (line " +
            std::to_string(sec.line) + ")");
      }
      inline_scenarios.back().models.push_back(parse_model_section(sec));
    }
  }
  for (const auto& s : inline_scenarios) validate_parsed_scenario(s);

  // Second pass: programs, in section order. [phase] and [faults] sections
  // attach to the most recent [program] header; phase references resolve
  // inline definitions before the built-in scenario registries.
  std::vector<ScenarioProgram> programs;
  for (const auto& sec : doc.all_sections()) {
    if (sec.name == "program") {
      ScenarioProgram program;
      program.name = sec.get("name");
      program.description = sec.get_or("description", "");
      program.scheduler = sec.get_or("scheduler", "");
      program.governor = sec.get_or("governor", "");
      program.admission = sec.get_or("admission", "");
      programs.push_back(std::move(program));
    } else if (sec.name == "faults") {
      if (programs.empty()) {
        throw std::invalid_argument(
            "program config: [faults] section before any [program] (line " +
            std::to_string(sec.line) + ")");
      }
      programs.back().faults =
          runtime::parse_fault_section(sec, "program config");
    } else if (sec.name == "phase") {
      if (programs.empty()) {
        throw std::invalid_argument(
            "program config: [phase] section before any [program] (line " +
            std::to_string(sec.line) + ")");
      }
      ScenarioPhase phase;
      const std::string ref = sec.get("scenario");
      const UsageScenario* resolved = nullptr;
      for (const auto& s : inline_scenarios) {
        if (s.name == ref) resolved = &s;
      }
      phase.scenario = resolved != nullptr ? *resolved : scenario_by_name(ref);
      phase.duration_ms = sec.get_double("duration_ms");
      if (phase.duration_ms <= 0.0) {
        throw std::invalid_argument(
            "program config: duration_ms must be > 0 (line " +
            std::to_string(sec.line_of("duration_ms")) + ")");
      }
      if (sec.has("seed_offset")) {
        const std::int64_t off = sec.get_int("seed_offset");
        if (off < 0) {
          throw std::invalid_argument(
              "program config: seed_offset must be >= 0 (line " +
              std::to_string(sec.line_of("seed_offset")) + ")");
        }
        phase.seed_offset = static_cast<std::uint64_t>(off);
      }
      programs.back().phases.push_back(std::move(phase));
    }
  }
  for (const auto& program : programs) validate_program(program);
  return programs;
}

ScenarioProgram program_from_config_text(const std::string& text) {
  const auto doc = util::IniDocument::parse(text);
  doc.section("program");  // exactly one [program]; throws otherwise
  auto programs = programs_from_document(doc);
  return std::move(programs.front());
}

void save_program(const ScenarioProgram& program,
                  const std::filesystem::path& path) {
  util::IniDocument::parse(to_config_text(program)).save(path);
}

ScenarioProgram load_program(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_program: cannot read " + path.string());
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return program_from_config_text(ss.str());
}

}  // namespace xrbench::workload
