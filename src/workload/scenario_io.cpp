#include "workload/scenario_io.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/ini.h"
#include "workload/input_source.h"
#include "workload/unit_model.h"

namespace xrbench::workload {
namespace {

DependencyType parse_dependency(const std::string& s) {
  if (s == "data") return DependencyType::kData;
  if (s == "control") return DependencyType::kControl;
  throw std::invalid_argument(
      "scenario config: dependency must be 'data' or 'control', got '" + s +
      "'");
}

}  // namespace

std::string to_config_text(const UsageScenario& scenario) {
  util::IniDocument doc;
  auto& head = doc.add_section("scenario");
  head.set("name", scenario.name);
  head.set("description", scenario.description);
  for (const auto& m : scenario.models) {
    auto& sec = doc.add_section("model");
    sec.set("task", models::task_code(m.task));
    sec.set_double("fps", m.target_fps);
    if (m.depends_on) {
      sec.set("depends_on", models::task_code(*m.depends_on));
      sec.set("dependency", dependency_type_name(m.dependency));
      sec.set_double("trigger_probability", m.trigger_probability);
    }
  }
  return doc.to_string();
}

UsageScenario from_config_text(const std::string& text) {
  const auto doc = util::IniDocument::parse(text);
  const auto& head = doc.section("scenario");

  UsageScenario scenario;
  scenario.name = head.get("name");
  scenario.description = head.get_or("description", "");

  const auto model_secs = doc.sections("model");
  if (model_secs.empty()) {
    throw std::invalid_argument(
        "scenario config: at least one [model] section is required");
  }
  std::set<models::TaskId> seen;
  for (const auto* sec : model_secs) {
    ScenarioModel m;
    m.task = models::parse_task_code(sec->get("task"));
    if (!seen.insert(m.task).second) {
      throw std::invalid_argument("scenario config: duplicate task " +
                                  std::string(models::task_code(m.task)));
    }
    m.target_fps = sec->get_double("fps");
    const auto& src = input_source(driving_source(m.task));
    if (m.target_fps <= 0.0 || m.target_fps > src.fps) {
      throw std::invalid_argument(
          "scenario config: fps for " +
          std::string(models::task_code(m.task)) + " must be in (0, " +
          std::to_string(src.fps) + "]");
    }
    if (sec->has("depends_on")) {
      m.depends_on = models::parse_task_code(sec->get("depends_on"));
      m.dependency = parse_dependency(sec->get("dependency"));
      m.trigger_probability =
          sec->has("trigger_probability")
              ? sec->get_double("trigger_probability")
              : 1.0;
      if (m.trigger_probability < 0.0 || m.trigger_probability > 1.0) {
        throw std::invalid_argument(
            "scenario config: trigger_probability must be in [0,1]");
      }
    }
    scenario.models.push_back(std::move(m));
  }
  // Dependencies must reference active models...
  for (const auto& m : scenario.models) {
    if (m.depends_on && scenario.find(*m.depends_on) == nullptr) {
      throw std::invalid_argument(
          "scenario config: " + std::string(models::task_code(m.task)) +
          " depends on inactive model " +
          std::string(models::task_code(*m.depends_on)));
    }
  }
  // ...and data-dependent models must consume at their upstream's rate
  // (same helper the runner's preflight uses).
  validate_dependency_rates(scenario);
  return scenario;
}

void save_scenario(const UsageScenario& scenario,
                   const std::filesystem::path& path) {
  util::IniDocument::parse(to_config_text(scenario)).save(path);
}

UsageScenario load_scenario(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_scenario: cannot read " + path.string());
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return from_config_text(ss.str());
}

}  // namespace xrbench::workload
