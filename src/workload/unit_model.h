#pragma once

#include <string>
#include <vector>

#include "models/task.h"
#include "workload/input_source.h"

namespace xrbench::workload {

/// Model quality goal (Definition 2: Q = (QMID, QMTarg, QMType)).
struct QualityGoal {
  std::string metric;           ///< e.g. "mIoU", "WER", "boxAP"
  double target = 0.0;          ///< QMTarg (Table 1 requirement value).
  bool higher_is_better = true; ///< QMType: HiB (true) or LiB (false).
  /// The reference model instance's achieved value on the Table-1 dataset.
  /// The paper's evaluation fixes accuracy score = 1 (all proxies meet
  /// their goals); benches can perturb this to exercise AccScore.
  double measured = 0.0;
};

/// Static description of one unit model (Definition 3: mu in M).
struct UnitModelSpec {
  models::TaskId task = models::TaskId::kHT;
  std::string dataset;                  ///< DSID (Table 1).
  std::vector<InputSourceId> inputs;    ///< sigma; multi-modal models list >1.
  QualityGoal quality;                  ///< Q.
};

/// Table-1 spec for a task (dataset, input sources, quality requirement).
const UnitModelSpec& unit_model_spec(models::TaskId task);

/// All 11 specs in Table-1 order.
const std::vector<UnitModelSpec>& all_unit_model_specs();

/// The driving (rate-defining) input source of a task. For multi-modal
/// models this is the source whose frames pace inference requests
/// (camera for DR; the lidar stream must also have arrived).
InputSourceId driving_source(models::TaskId task);

}  // namespace xrbench::workload
