#include "workload/unit_model.h"

#include <stdexcept>

namespace xrbench::workload {

using models::TaskId;

const std::vector<UnitModelSpec>& all_unit_model_specs() {
  constexpr InputSourceId kCamera = InputSourceId::kCamera;
  constexpr InputSourceId kLidar = InputSourceId::kLidar;
  constexpr InputSourceId kMicrophone = InputSourceId::kMicrophone;
  // Quality requirements are 95% of the model performance (105% of error)
  // reported in the original papers (Table 1 caption). `measured` is set to
  // the original-paper value, so the shipped proxies satisfy their goals
  // (accuracy score saturates at 1, matching the paper's evaluation setup).
  static const std::vector<UnitModelSpec> specs = {
      {TaskId::kHT, "Stereo Hand Pose", {kCamera},
       {"AUC PCK", 0.948, true, 0.998}},
      {TaskId::kES, "OpenEDS 2019", {kCamera}, {"mIoU", 90.54, true, 95.3}},
      {TaskId::kGE, "OpenEDS 2020", {kCamera},
       {"Angular Error", 3.39, false, 3.23}},
      {TaskId::kKD, "Google Speech Cmd", {kMicrophone},
       {"Accuracy", 85.60, true, 90.1}},
      {TaskId::kSR, "LibriSpeech", {kMicrophone},
       {"WER (others)", 8.79, false, 8.37}},
      {TaskId::kSS, "Cityscape", {kCamera}, {"mIoU", 77.54, true, 81.63}},
      {TaskId::kOD, "COCO", {kCamera}, {"boxAP", 21.84, true, 23.0}},
      {TaskId::kAS, "GTEA", {kCamera}, {"Accuracy", 60.8, true, 64.0}},
      {TaskId::kDE, "KITTI", {kCamera}, {"delta>1.25", 22.9, false, 21.8}},
      {TaskId::kDR, "KITTI", {kCamera, kLidar},
       {"delta1 (100 samples)", 85.5, true, 90.0}},
      {TaskId::kPD, "KITTI", {kCamera}, {"AP 0.6m", 0.37, true, 0.39}},
  };
  return specs;
}

const UnitModelSpec& unit_model_spec(TaskId task) {
  for (const auto& spec : all_unit_model_specs()) {
    if (spec.task == task) return spec;
  }
  throw std::invalid_argument("unit_model_spec: unknown task");
}

InputSourceId driving_source(TaskId task) {
  return unit_model_spec(task).inputs.front();
}

}  // namespace xrbench::workload
