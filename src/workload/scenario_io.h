#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "util/ini.h"
#include "workload/scenario.h"
#include "workload/scenario_program.h"

namespace xrbench::workload {

/// Text-config serialization of usage scenarios (the benchmark-input side
/// of Figure 2: "Workload Description / Usage Scenario Info"). Format:
///
///   [scenario]
///   name = Custom AR
///   description = my scenario
///
///   [model]                 ; one section per active model
///   task = HT
///   fps = 45
///   depends_on = ES        ; optional
///   dependency = data      ; data | control (required with depends_on)
///   trigger_probability = 0.5
///
/// Enables user-defined scenarios beyond Table 2 without recompiling.

std::string to_config_text(const UsageScenario& scenario);

/// Parses a scenario from INI text. Validates: at least one model, no
/// duplicate tasks, dependencies reference active models, probabilities in
/// [0,1], FPS within the driving sensor's rate.
UsageScenario from_config_text(const std::string& text);

void save_scenario(const UsageScenario& scenario,
                   const std::filesystem::path& path);
UsageScenario load_scenario(const std::filesystem::path& path);

/// Text-config serialization of scenario programs. Format:
///
///   [program]
///   name = Commute Session
///   description = walk -> transit -> walk
///   scheduler = edf              ; optional PolicyRegistry names
///   governor = deadline-aware    ; optional
///   admission = drop-early       ; optional
///
///   [faults]                     ; optional fault profile for every phase
///   transient_rate = 0.05        ; (see runtime/fault_spec.h; overrides
///   max_retries = 2              ; the run config's and the hardware's
///                                ; spec when enabled)
///
///   [scenario]                   ; optional inline scenario definitions,
///   name = Transit Idle          ; each followed by its [model] sections
///   [model]
///   task = KD
///   fps = 3
///
///   [phase]                      ; one section per phase, in order
///   scenario = AR Assistant      ; inline name, or a registered scenario
///   duration_ms = 500
///   seed_offset = 1              ; optional, default 0
///
/// Phase scenarios resolve against the file's inline definitions first,
/// then against the built-in suite/extension registries. The writer inlines
/// every phase scenario, so any program round-trips without relying on the
/// registries.

std::string to_config_text(const ScenarioProgram& program);
ScenarioProgram program_from_config_text(const std::string& text);

/// Parses every [program] of an already-parsed document, in section order.
/// Inline [scenario]/[model] definitions are file-global (any program's
/// phases may reference them); [phase] and [faults] sections belong to the
/// most recent [program] header (a [phase]/[faults] before any [program] is
/// rejected with its source line). program_from_config_text is the
/// single-program wrapper; fleet configs carry several session programs in
/// one file and resolve them through this entry point.
std::vector<ScenarioProgram> programs_from_document(
    const util::IniDocument& doc);

void save_program(const ScenarioProgram& program,
                  const std::filesystem::path& path);
ScenarioProgram load_program(const std::filesystem::path& path);

}  // namespace xrbench::workload
