#pragma once

#include <filesystem>
#include <string>

#include "workload/scenario.h"

namespace xrbench::workload {

/// Text-config serialization of usage scenarios (the benchmark-input side
/// of Figure 2: "Workload Description / Usage Scenario Info"). Format:
///
///   [scenario]
///   name = Custom AR
///   description = my scenario
///
///   [model]                 ; one section per active model
///   task = HT
///   fps = 45
///   depends_on = ES        ; optional
///   dependency = data      ; data | control (required with depends_on)
///   trigger_probability = 0.5
///
/// Enables user-defined scenarios beyond Table 2 without recompiling.

std::string to_config_text(const UsageScenario& scenario);

/// Parses a scenario from INI text. Validates: at least one model, no
/// duplicate tasks, dependencies reference active models, probabilities in
/// [0,1], FPS within the driving sensor's rate.
UsageScenario from_config_text(const std::string& text);

void save_scenario(const UsageScenario& scenario,
                   const std::filesystem::path& path);
UsageScenario load_scenario(const std::filesystem::path& path);

}  // namespace xrbench::workload
