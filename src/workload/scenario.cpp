#include "workload/scenario.h"

#include <stdexcept>

namespace xrbench::workload {

using models::TaskId;

const char* dependency_type_name(DependencyType t) {
  switch (t) {
    case DependencyType::kNone: return "none";
    case DependencyType::kData: return "data";
    case DependencyType::kControl: return "control";
  }
  return "?";
}

const ScenarioModel* UsageScenario::find(TaskId task) const {
  for (const auto& m : models) {
    if (m.task == task) return &m;
  }
  return nullptr;
}

namespace {

ScenarioModel independent(TaskId task, double fps) {
  return ScenarioModel{task, fps, std::nullopt, DependencyType::kNone, 1.0};
}

ScenarioModel data_dep(TaskId task, double fps, TaskId upstream,
                       double p = 1.0) {
  return ScenarioModel{task, fps, upstream, DependencyType::kData, p};
}

ScenarioModel control_dep(TaskId task, double fps, TaskId upstream, double p) {
  return ScenarioModel{task, fps, upstream, DependencyType::kControl, p};
}

std::vector<UsageScenario> build_suite() {
  std::vector<UsageScenario> suite;

  // Social Interaction A — AR messaging with AR object rendering.
  // HT 30, ES->GE 60/60, DR 30 (matches the Figure-3 deep-dive).
  suite.push_back(UsageScenario{
      "Social Interaction A",
      "AR messaging with AR object rendering",
      {independent(TaskId::kHT, 30), independent(TaskId::kES, 60),
       data_dep(TaskId::kGE, 60, TaskId::kES),
       independent(TaskId::kDR, 30)}});

  // Social Interaction B — in-person interaction with AR glasses.
  // Eye pipeline 60/60 + DR 30 (no hand tracking).
  suite.push_back(UsageScenario{
      "Social Interaction B",
      "In-person interaction with AR glasses",
      {independent(TaskId::kES, 60), data_dep(TaskId::kGE, 60, TaskId::kES),
       independent(TaskId::kDR, 30)}});

  // Outdoor Activity A — hiking with smart photo capture.
  // Speech pipeline 3/3 (keyword-gated, p=0.2 per §4.1), OD 10, AS 30.
  suite.push_back(UsageScenario{
      "Outdoor Activity A",
      "Hiking with smart photo capture",
      {independent(TaskId::kKD, 3),
       control_dep(TaskId::kSR, 3, TaskId::kKD, 0.2),
       independent(TaskId::kOD, 10), independent(TaskId::kAS, 30)}});

  // Outdoor Activity B — rest during hike: hand tracking engages for device
  // interaction (§3.3), speech pipeline stays armed (p=0.2).
  suite.push_back(UsageScenario{
      "Outdoor Activity B",
      "Rest during hike",
      {independent(TaskId::kHT, 30), independent(TaskId::kKD, 3),
       control_dep(TaskId::kSR, 3, TaskId::kKD, 0.2)}});

  // AR Assistant — urban walk with informative AR objects. The most
  // populated scenario (6 models): speech 3/3 (p=0.5 per §4.1),
  // SS 10, OD 10, DE 30, PD 30.
  suite.push_back(UsageScenario{
      "AR Assistant",
      "Urban walk with informative AR objects",
      {independent(TaskId::kKD, 3),
       control_dep(TaskId::kSR, 3, TaskId::kKD, 0.5),
       independent(TaskId::kSS, 10), independent(TaskId::kOD, 10),
       independent(TaskId::kDE, 30), independent(TaskId::kPD, 30)}});

  // AR Gaming — gaming with AR object: HT 45, DE 30, PD 30 (the Figure-6
  // timeline shows exactly these three models).
  suite.push_back(UsageScenario{
      "AR Gaming",
      "Gaming with AR object",
      {independent(TaskId::kHT, 45), independent(TaskId::kDE, 30),
       independent(TaskId::kPD, 30)}});

  // VR Gaming — highly-interactive immersive VR gaming: HT 45, ES->GE 60/60.
  // The fewest-model scenario (3).
  suite.push_back(UsageScenario{
      "VR Gaming",
      "Highly-interactive immersive VR gaming",
      {independent(TaskId::kHT, 45), independent(TaskId::kES, 60),
       data_dep(TaskId::kGE, 60, TaskId::kES)}});

  return suite;
}

std::vector<UsageScenario> build_extensions() {
  std::vector<UsageScenario> extra;

  // Low-Power Wearable — always-on assistant glasses between interactions:
  // slow keyword spotting, gesture tracking at half rate, ambient activity
  // recognition. Every model has generous slack relative to its cost, which
  // is exactly where a DVFS governor can trade frequency for energy.
  extra.push_back(UsageScenario{
      "Low-Power Wearable",
      "Always-on assistant glasses idling between interactions",
      {independent(TaskId::kKD, 3),
       control_dep(TaskId::kSR, 3, TaskId::kKD, 0.25),
       independent(TaskId::kHT, 15), independent(TaskId::kAS, 30)}});

  // Bursty Notification — incoming-message bursts on AR glasses: the
  // keyword-gated speech cascade fires often (p=0.8), and the eye pipeline
  // wakes at half rate to drive notification gaze interaction.
  extra.push_back(UsageScenario{
      "Bursty Notification",
      "Incoming-notification bursts with gaze-driven interaction",
      {independent(TaskId::kKD, 3),
       control_dep(TaskId::kSR, 3, TaskId::kKD, 0.8),
       independent(TaskId::kES, 30), data_dep(TaskId::kGE, 30, TaskId::kES),
       independent(TaskId::kHT, 30)}});

  return extra;
}

}  // namespace

const std::vector<UsageScenario>& benchmark_suite() {
  static const std::vector<UsageScenario> suite = build_suite();
  return suite;
}

const std::vector<UsageScenario>& extension_scenarios() {
  static const std::vector<UsageScenario> extra = build_extensions();
  return extra;
}

const UsageScenario& scenario_by_name(const std::string& name) {
  for (const auto& s : benchmark_suite()) {
    if (s.name == name) return s;
  }
  for (const auto& s : extension_scenarios()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("scenario_by_name: unknown scenario '" + name +
                              "'");
}

void validate_dependency_rates(const UsageScenario& scenario) {
  for (const auto& m : scenario.models) {
    if (!m.depends_on || m.dependency != DependencyType::kData) continue;
    const ScenarioModel* up = scenario.find(*m.depends_on);
    if (up != nullptr && up->target_fps != m.target_fps) {
      throw std::invalid_argument(
          "data-dependent model " + std::string(models::task_code(m.task)) +
          " targets " + std::to_string(m.target_fps) +
          " FPS but its upstream " + models::task_code(up->task) +
          " runs at " + std::to_string(up->target_fps) + " FPS");
    }
  }
}

bool is_dynamic_scenario(const UsageScenario& scenario) {
  for (const auto& m : scenario.models) {
    if (m.dependency == DependencyType::kControl &&
        m.trigger_probability < 1.0) {
      return true;
    }
  }
  return false;
}

UsageScenario with_cascade_probability(const UsageScenario& scenario,
                                       TaskId downstream, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(
        "with_cascade_probability: p must be in [0,1]");
  }
  UsageScenario copy = scenario;
  bool found = false;
  for (auto& m : copy.models) {
    if (m.task == downstream && m.depends_on.has_value()) {
      m.trigger_probability = p;
      // Sweeping a data dependency's probability turns it into a dynamic
      // control-flow edge (the Figure-7 ES->GE experiment).
      m.dependency = DependencyType::kControl;
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument(
        "with_cascade_probability: task has no dependency in scenario");
  }
  return copy;
}

}  // namespace xrbench::workload
