#include "workload/scenario_program.h"

#include <stdexcept>

#include "workload/input_source.h"

namespace xrbench::workload {

using models::TaskId;

double ScenarioProgram::total_duration_ms() const {
  double total = 0.0;
  for (const auto& phase : phases) total += phase.duration_ms;
  return total;
}

ScenarioProgram single_phase_program(const UsageScenario& scenario,
                                     double duration_ms) {
  ScenarioProgram program;
  program.name = scenario.name;
  program.description = scenario.description;
  program.phases.push_back(ScenarioPhase{scenario, duration_ms, 0});
  return program;
}

void validate_program(const ScenarioProgram& program) {
  if (program.phases.empty()) {
    throw std::invalid_argument("scenario program '" + program.name +
                                "': at least one phase is required");
  }
  for (std::size_t i = 0; i < program.phases.size(); ++i) {
    const auto& phase = program.phases[i];
    if (phase.duration_ms <= 0.0) {
      throw std::invalid_argument("scenario program '" + program.name +
                                  "': phase " + std::to_string(i) +
                                  " duration must be > 0");
    }
    if (phase.scenario.models.empty()) {
      throw std::invalid_argument("scenario program '" + program.name +
                                  "': phase " + std::to_string(i) +
                                  " scenario has no models");
    }
    for (const auto& sm : phase.scenario.models) {
      const auto& src = input_source(driving_source(sm.task));
      if (sm.target_fps <= 0.0 || sm.target_fps > src.fps + 1e-9) {
        throw std::invalid_argument(
            "scenario program '" + program.name + "': phase " +
            std::to_string(i) + " model " + models::task_code(sm.task) +
            " target FPS outside (0, sensor rate]");
      }
    }
    validate_dependency_rates(phase.scenario);
  }
}

bool is_dynamic_program(const ScenarioProgram& program) {
  for (const auto& phase : program.phases) {
    if (is_dynamic_scenario(phase.scenario)) return true;
  }
  return false;
}

namespace {

ScenarioPhase phase(const std::string& scenario_name, double duration_ms,
                    std::uint64_t seed_offset) {
  return ScenarioPhase{scenario_by_name(scenario_name), duration_ms,
                       seed_offset};
}

/// The co-presence peak model set: both users' pipelines active at once —
/// hand tracking at the interactive rate, the full eye pipeline, AR object
/// rendering and object detection for the second user's avatar/space. Not
/// part of the scored Table-2 suite; it exists as the middle phase of the
/// co-presence program.
UsageScenario co_presence_peak() {
  UsageScenario s;
  s.name = "Co-Presence Peak";
  s.description = "Two users sharing one AR space at full interaction rate";
  s.models = {
      ScenarioModel{TaskId::kHT, 45, std::nullopt, DependencyType::kNone, 1.0},
      ScenarioModel{TaskId::kES, 60, std::nullopt, DependencyType::kNone, 1.0},
      ScenarioModel{TaskId::kGE, 60, TaskId::kES, DependencyType::kData, 1.0},
      ScenarioModel{TaskId::kDR, 30, std::nullopt, DependencyType::kNone, 1.0},
      ScenarioModel{TaskId::kOD, 10, std::nullopt, DependencyType::kNone, 1.0},
  };
  return s;
}

std::vector<ScenarioProgram> build_programs() {
  std::vector<ScenarioProgram> programs;

  // Hand-off between scenarios over an XR session (ROADMAP follow-on): the
  // user hikes, rests and interacts with the device, then walks on with the
  // AR assistant engaged. Distinct seed offsets decorrelate the two
  // keyword-gated speech cascades.
  ScenarioProgram handoff;
  handoff.name = "Scenario Hand-Off";
  handoff.description =
      "Hike -> rest with device interaction -> urban AR assistant";
  handoff.phases = {phase("Outdoor Activity A", 500.0, 0),
                    phase("Outdoor Activity B", 500.0, 1),
                    phase("AR Assistant", 500.0, 2)};
  programs.push_back(std::move(handoff));

  // Multi-user co-presence: a social session that peaks when a second user
  // joins (union model set at elevated rates), then settles back into
  // one-on-one interaction.
  ScenarioProgram copresence;
  copresence.name = "Multi-User Co-Presence";
  copresence.description =
      "Solo social session -> second user joins -> settle to one-on-one";
  copresence.phases = {
      ScenarioPhase{scenario_by_name("Social Interaction B"), 400.0, 0},
      ScenarioPhase{co_presence_peak(), 400.0, 1},
      ScenarioPhase{scenario_by_name("Social Interaction A"), 400.0, 2}};
  programs.push_back(std::move(copresence));

  // Bursty notification over a low-power base load: the always-on wearable
  // profile interrupted by a notification burst, then back to idle.
  ScenarioProgram bursty;
  bursty.name = "Bursty Notification Over Base";
  bursty.description =
      "Always-on wearable baseline -> notification burst -> baseline";
  bursty.phases = {phase("Low-Power Wearable", 600.0, 0),
                   phase("Bursty Notification", 300.0, 1),
                   phase("Low-Power Wearable", 600.0, 2)};
  programs.push_back(std::move(bursty));

  for (const auto& p : programs) validate_program(p);
  return programs;
}

}  // namespace

const std::vector<ScenarioProgram>& extension_programs() {
  static const std::vector<ScenarioProgram> programs = build_programs();
  return programs;
}

const ScenarioProgram& program_by_name(const std::string& name) {
  for (const auto& p : extension_programs()) {
    if (p.name == name) return p;
  }
  std::string available;
  for (const auto& p : extension_programs()) {
    if (!available.empty()) available += ", ";
    available += "'" + p.name + "'";
  }
  throw std::invalid_argument("program_by_name: unknown program '" + name +
                              "' (available: " + available + ")");
}

}  // namespace xrbench::workload
