#include "workload/input_source.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace xrbench::workload {

const char* input_source_name(InputSourceId id) {
  switch (id) {
    case InputSourceId::kCamera: return "Camera";
    case InputSourceId::kLidar: return "Lidar";
    case InputSourceId::kMicrophone: return "Microphone";
  }
  return "?";
}

const std::vector<InputSource>& all_input_sources() {
  static const std::vector<InputSource> sources = {
      {InputSourceId::kCamera, "Images", 60.0, 0.05, 1.0},
      {InputSourceId::kLidar, "Sparse Depth Points", 60.0, 0.05, 2.0},
      {InputSourceId::kMicrophone, "Audio", 3.0, 0.1, 5.0},
  };
  return sources;
}

const InputSource& input_source(InputSourceId id) {
  for (const auto& src : all_input_sources()) {
    if (src.id == id) return src;
  }
  throw std::invalid_argument("input_source: unknown source id");
}

double ideal_arrival_ms(const InputSource& src, std::int64_t frame) {
  return src.init_latency_ms +
         static_cast<double>(frame) * 1000.0 / src.fps;
}

double jitter_offset_ms(const InputSource& src, std::int64_t frame,
                        std::uint64_t trial_seed) {
  // rand(inSrcID x InFrameID), extended with the trial seed so repeated
  // trials of dynamic scenarios observe fresh jitter.
  const std::uint64_t key = util::combine_keys(
      trial_seed,
      util::combine_keys(static_cast<std::uint64_t>(src.id) + 1,
                         static_cast<std::uint64_t>(frame)));
  // Dist(x): clipped Gaussian centered at 0.5 (sigma chosen so ~99.9% of
  // mass is inside [0,1] before clipping).
  const double u1 = util::hash_unit_interval(key);
  const double u2 = util::hash_unit_interval(key ^ 0x5BF03635DCE26E4DULL);
  const double g =
      std::sqrt(-2.0 * std::log(std::max(u1, 1e-300))) *
      std::cos(2.0 * M_PI * u2);
  const double dist = std::clamp(0.5 + g / 6.6, 0.0, 1.0);
  return 2.0 * src.max_jitter_ms * (dist - 0.5);
}

double frame_arrival_ms(const InputSource& src, std::int64_t frame,
                        std::uint64_t trial_seed, bool enable_jitter) {
  double t = ideal_arrival_ms(src, frame);
  if (enable_jitter) t += jitter_offset_ms(src, frame, trial_seed);
  return t;
}

}  // namespace xrbench::workload
