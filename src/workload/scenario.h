#pragma once

#include <optional>
#include <string>
#include <vector>

#include "models/task.h"
#include "workload/unit_model.h"

namespace xrbench::workload {

/// Cross-model dependency kind (paper Table 2): the eye pipeline has a data
/// dependency (GE consumes ES output), the speech pipeline a control
/// dependency (SR is launched only when KD detects a keyword).
enum class DependencyType { kNone, kData, kControl };

const char* dependency_type_name(DependencyType t);

/// One active model inside a usage scenario (Definition 4 element).
struct ScenarioModel {
  models::TaskId task = models::TaskId::kHT;
  double target_fps = 30.0;  ///< FPS_model: target processing rate.
  /// Upstream model this one depends on (Dep_mu), if any.
  std::optional<models::TaskId> depends_on;
  DependencyType dependency = DependencyType::kNone;
  /// Probability that an upstream completion triggers this model
  /// (1.0 for pure data dependencies; the paper's §4.1 cascading
  /// probabilities for control dependencies: 0.2 outdoor, 0.5 AR assistant).
  double trigger_probability = 1.0;
};

/// A usage scenario (Definition 4: theta).
struct UsageScenario {
  std::string name;
  std::string description;  ///< Table-2 "Example Usage Scenario Description".
  std::vector<ScenarioModel> models;

  /// Returns the entry for `task`, or nullptr when the model is inactive
  /// (deactivated, 0 FPS) in this scenario.
  const ScenarioModel* find(models::TaskId task) const;

  /// Number of active models, |theta|.
  std::size_t num_models() const { return models.size(); }
};

/// The seven Table-2 usage scenarios, in paper order:
/// Social Interaction A/B, Outdoor Activity A/B, AR Assistant, AR Gaming,
/// VR Gaming. See DESIGN.md for the column-assignment notes on the rows the
/// PDF table flattens ambiguously.
const std::vector<UsageScenario>& benchmark_suite();

/// Extension scenarios beyond Table 2 (not part of the scored suite):
/// "Low-Power Wearable" (an always-on, high-slack profile that stresses
/// DVFS down-clocking) and "Bursty Notification" (a keyword-gated burst
/// profile whose load swings between idle and a dependent cascade).
const std::vector<UsageScenario>& extension_scenarios();

/// Looks a scenario up by name (exact match) across the Table-2 suite and
/// the extension scenarios. Throws on unknown name.
const UsageScenario& scenario_by_name(const std::string& name);

/// True when any model in the scenario has a control dependency with
/// trigger probability < 1 (i.e. the workload is stochastic and benches
/// should average multiple trials — paper §4.1 / appendix D.6).
bool is_dynamic_scenario(const UsageScenario& scenario);

/// Throws std::invalid_argument when a data-dependent model's target_fps
/// differs from its (active) upstream's rate. Such a model is requested
/// once per upstream completion but scores its QoE against its own target
/// rate, so a mismatch silently skews QoE. Shared by the scenario parser
/// and the runner's preflight checks; an absent upstream is not an error
/// here (the runner tolerates it — the model is simply never triggered).
void validate_dependency_rates(const UsageScenario& scenario);

/// Returns a copy of `scenario` with every data/control trigger probability
/// on the ES->GE edge replaced by `p` (the Figure-7 cascade sweep).
UsageScenario with_cascade_probability(const UsageScenario& scenario,
                                       models::TaskId downstream, double p);

}  // namespace xrbench::workload
