#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xrbench::workload {

/// The three input sources of a metaverse device (paper Table 3).
enum class InputSourceId { kCamera, kLidar, kMicrophone };

const char* input_source_name(InputSourceId id);

/// Static description of one input stream (Definition 1: St_input).
struct InputSource {
  InputSourceId id = InputSourceId::kCamera;
  std::string input_type;       ///< "Images", "Sparse Depth Points", "Audio"
  double fps = 60.0;            ///< Streaming rate (Table 3).
  double max_jitter_ms = 0.05;  ///< Jt: max absolute jitter (Table 3).
  double init_latency_ms = 1.0; ///< Linit: stream setup latency.
};

/// The Table-3 source descriptions: camera 60 FPS +-0.05 ms, lidar 60 FPS
/// +-0.05 ms, microphone 3 FPS +-0.1 ms.
const InputSource& input_source(InputSourceId id);
const std::vector<InputSource>& all_input_sources();

/// Frame arrival (inference request) time — Definition 7:
///   Treq = Linit + frame/FPS + 2*Jt*(Dist(rand(src x frame)) - 0.5)
/// Dist is a clipped Gaussian over [0,1] (paper's default); `rand` is a
/// deterministic hash of (trial_seed, source, frame) so a given trial is
/// reproducible while distinct trials see fresh jitter.
double frame_arrival_ms(const InputSource& src, std::int64_t frame,
                        std::uint64_t trial_seed, bool enable_jitter = true);

/// Ideal (jitter-free) arrival time of `frame`: Linit + frame/FPS.
double ideal_arrival_ms(const InputSource& src, std::int64_t frame);

/// Jittered offset component alone, in [-Jt, +Jt].
double jitter_offset_ms(const InputSource& src, std::int64_t frame,
                        std::uint64_t trial_seed);

}  // namespace xrbench::workload
