#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/fault_spec.h"
#include "workload/scenario.h"

namespace xrbench::workload {

/// One phase of a scenario program: a usage scenario that is active for a
/// window of the session timeline. The seed offset decorrelates the jitter
/// and control-flow streams of phases that reuse a scenario (two "walk"
/// phases of a hand-off program should not replay identical jitter); the
/// runner strides offsets far apart in seed space, so consecutive trial
/// seeds of a multi-trial average never collide with another trial's
/// phases. Offset 0 leaves the run seed untouched.
struct ScenarioPhase {
  UsageScenario scenario;
  double duration_ms = 1000.0;
  std::uint64_t seed_offset = 0;
};

/// A scenario program (the paper's cascade-of-scenarios view of an XR
/// session, §2/§3.3): an ordered list of phases executed as one continuous
/// timeline. At each phase boundary the runner retires in-flight frames
/// deterministically, swaps the active model set and keeps cumulative
/// record/QoE accounting — a single-phase program is bit-identical to a
/// plain single-scenario run (enforced by test; the compatibility anchor).
struct ScenarioProgram {
  std::string name;
  std::string description;
  /// Optional policy names resolved through runtime::PolicyRegistry ("edf",
  /// "deadline-aware", ...). Empty = the harness's configured default. Kept
  /// as plain strings so workload stays independent of the runtime layer
  /// (FaultSpec below is pure data from a leaf header, not runtime
  /// machinery).
  std::string scheduler;
  std::string governor;
  /// Optional admission-control policy name ("admit-all", "drop-early").
  /// Empty = the harness's configured default.
  std::string admission;
  /// Program-level fault profile (the program config's [faults] section).
  /// When enabled it overrides both RunConfig::faults and the hardware's
  /// spec for every phase of this program.
  runtime::FaultSpec faults;
  std::vector<ScenarioPhase> phases;

  double total_duration_ms() const;
  std::size_t num_phases() const { return phases.size(); }
};

/// Wraps one scenario as a single-phase program (duration from the caller,
/// seed offset 0) — the program-typed spelling of today's scenario run.
ScenarioProgram single_phase_program(const UsageScenario& scenario,
                                     double duration_ms);

/// Throws std::invalid_argument when the program is malformed: no phases, a
/// non-positive phase duration, or a phase scenario that fails the scenario
/// validations (validate_dependency_rates and friends are re-checked by the
/// runner, but programs are validated eagerly at build/parse time).
void validate_program(const ScenarioProgram& program);

/// True when any phase's scenario is dynamic (stochastic control flow), so
/// benches should average multiple trials — the program analogue of
/// is_dynamic_scenario.
bool is_dynamic_program(const ScenarioProgram& program);

/// Extension programs beyond the single-scenario suite, registered
/// alongside extension_scenarios():
///  * "Scenario Hand-Off"   — walk -> rest -> AR-assist hand-off between
///    three Table-2 scenarios over one session.
///  * "Multi-User Co-Presence" — a social session that peaks when a second
///    user joins (union model set at elevated rates), then settles.
///  * "Bursty Notification Over Base" — a low-power wearable baseline
///    interrupted by a notification burst, then back to baseline.
const std::vector<ScenarioProgram>& extension_programs();

/// Looks a program up by name across extension_programs(). Throws on
/// unknown name, listing the available programs.
const ScenarioProgram& program_by_name(const std::string& name);

}  // namespace xrbench::workload
