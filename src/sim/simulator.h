#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

namespace xrbench::sim {

/// Simulation time in milliseconds since run start.
using TimeMs = double;

/// Opaque handle identifying a scheduled event (for cancellation). Encodes
/// (generation << 32 | pool slot), so a handle kept across a slot reuse is
/// detected as stale instead of cancelling an unrelated event. 0 is never a
/// valid id.
using EventId = std::uint64_t;

/// Small-buffer callback for simulator events. Stores the callable inline
/// (no heap allocation); callables larger than the inline buffer are
/// rejected at compile time — the simulation hot path schedules millions of
/// events per sweep, so every capture must stay small.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 96;

  EventCallback() = default;

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>, int> = 0>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    static_assert(sizeof(D) <= kInlineBytes,
                  "event callback capture exceeds the inline event-pool "
                  "buffer; shrink the capture (pass a pointer to shared "
                  "state instead of copying it)");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned event callback capture");
    new (buf_) D(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
    relocate_ = [](void* dst, void* src) {
      D* s = static_cast<D*>(src);
      new (dst) D(std::move(*s));
      s->~D();
    };
    destroy_ = [](void* p) { static_cast<D*>(p)->~D(); };
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  /// Destroys the stored callable (releasing any resources it owns) and
  /// returns to the empty state.
  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void move_from(EventCallback& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// Deterministic discrete-event simulator.
///
/// Events at equal timestamps fire in scheduling order (FIFO tie-break), so a
/// run is fully reproducible. The simulator is the time substrate for the
/// XRBench runtime: sensor frame arrivals, inference completions, and
/// deadline checks are all events.
///
/// Events live in a pooled free-list arena: the priority queue holds small
/// POD entries and each callback is stored inline in a recycled pool slot,
/// so steady-state scheduling performs no heap allocation (the pool and the
/// queue retain their high-water capacity). Cancellation is O(1): the slot
/// is released immediately and the stale queue entry is skipped on pop via
/// its generation tag.
class Simulator {
 public:
  using Callback = EventCallback;

  /// Current simulation time. 0 before the first event fires.
  TimeMs now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (>= now, clamped otherwise).
  /// Returns an id usable with cancel().
  EventId schedule_at(TimeMs when, Callback cb);

  /// Schedules `cb` `delay` milliseconds from now.
  EventId schedule_after(TimeMs delay, Callback cb);

  /// Cancels a pending event. Returns false if it already fired, was
  /// cancelled before, or never existed (including ids whose pool slot has
  /// since been reused by a newer event).
  bool cancel(EventId id);

  /// Runs events until the queue is empty. Returns the number of events
  /// fired.
  std::size_t run();

  /// Runs events with timestamp <= `until`, then sets now() to `until` if it
  /// advanced past the last fired event. Returns events fired.
  std::size_t run_until(TimeMs until);

  /// Fires exactly one event if available. Returns false when queue is empty.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::size_t fired_events() const { return fired_; }

  /// Pre-sizes the event pool and queue storage (optional; the pool also
  /// grows on demand and is reused across the run).
  void reserve(std::size_t events);

  /// Rewinds the clock to 0 for a new run, keeping the pool's high-water
  /// capacity — the arena-reuse hook for sweep workers that run thousands
  /// of trials. Only legal once the queue has drained (run() returned and
  /// nothing was scheduled since); throws std::logic_error otherwise.
  /// The FIFO sequence counter keeps running — only the relative order of
  /// equal-time events matters, so a reused simulator replays a seeded run
  /// bit-identically to a fresh one (enforced by test).
  void reset();

  /// Number of pool slots ever allocated (high-water mark of concurrently
  /// pending events; exposed for tests and diagnostics).
  std::size_t pool_slots() const { return pool_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    EventCallback cb;
    std::uint32_t generation = 0;  ///< Bumped on each allocation of the slot.
    std::uint32_t next_free = kNil;
    bool live = false;
  };

  /// POD heap entry; `generation` detects entries whose slot was cancelled
  /// (and possibly reused) between push and pop.
  struct QueueEntry {
    TimeMs when;
    std::uint64_t seq;  // FIFO tie-break
    std::uint32_t slot;
    std::uint32_t generation;
    bool operator>(const QueueEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);
  bool entry_live(const QueueEntry& e) const {
    return pool_[e.slot].live && pool_[e.slot].generation == e.generation;
  }
  void skip_stale_top();
  bool fire_next();

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;
  std::size_t fired_ = 0;
};

}  // namespace xrbench::sim
