#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace xrbench::sim {

/// Simulation time in milliseconds since run start.
using TimeMs = double;

/// Opaque handle identifying a scheduled event (for cancellation).
using EventId = std::uint64_t;

/// Deterministic discrete-event simulator.
///
/// Events at equal timestamps fire in scheduling order (FIFO tie-break), so a
/// run is fully reproducible. The simulator is the time substrate for the
/// XRBench runtime: sensor frame arrivals, inference completions, and
/// deadline checks are all events.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. 0 before the first event fires.
  TimeMs now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (>= now, clamped otherwise).
  /// Returns an id usable with cancel().
  EventId schedule_at(TimeMs when, Callback cb);

  /// Schedules `cb` `delay` milliseconds from now.
  EventId schedule_after(TimeMs delay, Callback cb);

  /// Cancels a pending event. Returns false if it already fired, was
  /// cancelled before, or never existed.
  bool cancel(EventId id);

  /// Runs events until the queue is empty. Returns the number of events
  /// fired.
  std::size_t run();

  /// Runs events with timestamp <= `until`, then sets now() to `until` if it
  /// advanced past the last fired event. Returns events fired.
  std::size_t run_until(TimeMs until);

  /// Fires exactly one event if available. Returns false when queue is empty.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::size_t fired_events() const { return fired_; }

 private:
  struct Event {
    TimeMs when;
    std::uint64_t seq;  // FIFO tie-break
    EventId id;
    Callback cb;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  bool fire_next();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::size_t fired_ = 0;

  bool is_cancelled(EventId id) const;
};

}  // namespace xrbench::sim
