#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace xrbench::sim {

std::uint32_t Simulator::alloc_slot() {
  std::uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Node& n = pool_[slot];
  ++n.generation;  // stale ids/entries from the previous tenant now mismatch
  n.live = true;
  n.next_free = kNil;
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Node& n = pool_[slot];
  n.cb.reset();
  n.live = false;
  n.next_free = free_head_;
  free_head_ = slot;
}

EventId Simulator::schedule_at(TimeMs when, Callback cb) {
  const std::uint32_t slot = alloc_slot();
  Node& n = pool_[slot];
  n.cb = std::move(cb);
  queue_.push(QueueEntry{std::max(when, now_), next_seq_++, slot,
                         n.generation});
  ++live_events_;
  return (static_cast<EventId>(n.generation) << 32) | slot;
}

EventId Simulator::schedule_after(TimeMs delay, Callback cb) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= pool_.size()) return false;
  Node& n = pool_[slot];
  if (!n.live || n.generation != generation) return false;
  release_slot(slot);  // the stale queue entry is skipped on pop
  if (live_events_ > 0) --live_events_;
  return true;
}

void Simulator::skip_stale_top() {
  while (!queue_.empty() && !entry_live(queue_.top())) queue_.pop();
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    const QueueEntry e = queue_.top();
    queue_.pop();
    if (!entry_live(e)) continue;
    // Move the callback out before firing: the callback may schedule new
    // events, growing the pool and invalidating node references; releasing
    // first also makes a cancel() of this id during the callback a no-op.
    EventCallback cb = std::move(pool_[e.slot].cb);
    release_slot(e.slot);
    now_ = e.when;
    --live_events_;
    ++fired_;
    cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t fired = 0;
  while (fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(TimeMs until) {
  std::size_t fired = 0;
  while (true) {
    skip_stale_top();
    if (queue_.empty() || queue_.top().when > until) break;
    if (fire_next()) ++fired;
  }
  now_ = std::max(now_, until);
  return fired;
}

bool Simulator::step() { return fire_next(); }

void Simulator::reserve(std::size_t events) {
  pool_.reserve(events);
  // priority_queue has no reserve; rebuild its container with capacity.
  std::vector<QueueEntry> storage;
  storage.reserve(events);
  while (!queue_.empty()) {
    storage.push_back(queue_.top());
    queue_.pop();
  }
  queue_ = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                               std::greater<>>(std::greater<>{},
                                               std::move(storage));
}

void Simulator::reset() {
  if (live_events_ != 0) {
    throw std::logic_error("Simulator::reset: events are still pending");
  }
  // Every remaining queue entry is stale (its slot was cancelled — live
  // slots are counted by live_events_); drop them so the rewound clock can
  // never resurrect one.
  while (!queue_.empty()) queue_.pop();
  now_ = 0.0;
  fired_ = 0;
}

}  // namespace xrbench::sim
