#include "sim/simulator.h"

#include <algorithm>

namespace xrbench::sim {

EventId Simulator::schedule_at(TimeMs when, Callback cb) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(when, now_), next_seq_++, id, std::move(cb)});
  ++live_events_;
  return id;
}

EventId Simulator::schedule_after(TimeMs delay, Callback cb) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(cb));
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (is_cancelled(id)) return false;
  // We cannot remove from the middle of a priority_queue; mark instead.
  // The event is discarded (not fired) when popped.
  cancelled_.insert(id);
  if (live_events_ > 0) --live_events_;
  return true;
}

bool Simulator::is_cancelled(EventId id) const {
  return cancelled_.count(id) > 0;
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) {
      cancelled_.erase(ev.id);
      continue;
    }
    now_ = ev.when;
    --live_events_;
    ++fired_;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t fired = 0;
  while (fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(TimeMs until) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Peek past cancelled events to find the next live timestamp.
    while (!queue_.empty() && is_cancelled(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > until) break;
    if (fire_next()) ++fired;
  }
  now_ = std::max(now_, until);
  return fired;
}

bool Simulator::step() { return fire_next(); }

}  // namespace xrbench::sim
