#pragma once

#include <array>
#include <string>

namespace xrbench::models {

/// The 11 unit tasks of XRBench (paper Table 1). KD and SR appear in both
/// the Interaction and Context-Understanding categories; they are one task
/// each here (the category is metadata).
enum class TaskId {
  kHT,  ///< Hand Tracking — Hand Shape/Pose CNN (Ge et al. 2019)
  kES,  ///< Eye Segmentation — RITNet
  kGE,  ///< Gaze Estimation — Eyecod / FBNet-C instance
  kKD,  ///< Keyword Detection — res8-narrow
  kSR,  ///< Speech Recognition — Emformer EM-24L
  kSS,  ///< Semantic Segmentation — HRViT-b1
  kOD,  ///< Object Detection — D2Go Faster-RCNN-FBNetV3A
  kAS,  ///< Action Segmentation — ED-TCN
  kDE,  ///< Depth Estimation — MiDaS v21 small
  kDR,  ///< Depth Refinement — Sparse-to-Dense RGBd-200
  kPD,  ///< Plane Detection — PlaneRCNN
};

inline constexpr std::size_t kNumTasks = 11;

/// All tasks in Table-1 order.
const std::array<TaskId, kNumTasks>& all_tasks();

/// Two-letter task code used throughout the paper ("HT", "ES", ...).
const char* task_code(TaskId t);

/// Full task name ("Hand Tracking", ...).
const char* task_name(TaskId t);

/// Reference model instance name (paper Table 7).
const char* model_instance_name(TaskId t);

/// Task category: "Interaction", "Context Understanding", "World Locking".
const char* task_category(TaskId t);

/// Parses a two-letter code (case-insensitive). Throws on unknown code.
TaskId parse_task_code(const std::string& code);

/// Stable dense index of a task in [0, kNumTasks).
std::size_t task_index(TaskId t);

}  // namespace xrbench::models
