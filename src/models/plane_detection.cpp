#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::elementwise;
using costmodel::matmul;
using costmodel::ModelGraph;
using costmodel::pool;
using costmodel::roi_align;
using costmodel::upsample;

/// PD — PlaneRCNN (Liu et al., CVPR 2019): 3D plane detection and
/// reconstruction from a single image. Mask-R-CNN-style architecture:
/// ResNet-101 backbone + FPN, RPN, per-RoI box/class/plane-parameter heads,
/// a mask head, and a depth-map decoder branch used by the plane refinement
/// stage.
///
/// Input: KITTI downscaled by 1/4 (appendix A): 1242x375 -> 312x96.
/// This is deliberately the heavyweight model of the suite (the paper's
/// Figure 6 shows 4K-PE systems failing to sustain PD at 30 FPS).
ModelGraph build_plane_detection() {
  ModelGraph g("PD.PlaneRCNN");
  SpatialDims d{96, 312};

  // ResNet-101 backbone.
  d = conv_bn_relu(g, "stem", 3, 64, d, 7, 2);  // 48x156
  g.add(pool("stem.pool", 64, d.h / 2, d.w / 2, 2));
  d = {d.h / 2, d.w / 2};  // 24x78

  struct Stage {
    std::int64_t mid_ch;
    int blocks;
    std::int64_t stride;
  };
  const Stage stages[] = {
      {64, 3, 1},    // C2: 24x78, 256 out
      {128, 4, 2},   // C3: 12x39, 512 out
      {256, 23, 2},  // C4: 6x20, 1024 out  (ResNet-101's deep stage)
      {512, 3, 2},   // C5: 3x10, 2048 out
  };
  std::int64_t in_ch = 64;
  SpatialDims c_dims[4];
  std::int64_t c_ch[4];
  int ci = 0;
  for (const auto& st : stages) {
    for (int b = 0; b < st.blocks; ++b) {
      const std::int64_t stride = (b == 0) ? st.stride : 1;
      d = bottleneck_block(
          g, "c" + std::to_string(ci + 2) + "_" + std::to_string(b), in_ch,
          st.mid_ch, d, stride);
      in_ch = st.mid_ch * 4;
    }
    c_dims[ci] = d;
    c_ch[ci] = in_ch;
    ++ci;
  }

  // FPN: lateral 1x1 + top-down upsample + 3x3 smoothing, P2..P5 at 256 ch.
  for (int lvl = 3; lvl >= 0; --lvl) {
    const std::string p = "fpn.p" + std::to_string(lvl + 2);
    g.add(conv2d(p + ".lateral", c_ch[lvl], 256, c_dims[lvl].h, c_dims[lvl].w,
                 1, 1));
    if (lvl < 3) {
      g.add(upsample(p + ".topdown", 256, c_dims[lvl].h, c_dims[lvl].w));
      g.add(elementwise(p + ".add", 256 * c_dims[lvl].h * c_dims[lvl].w));
    }
    g.add(conv2d(p + ".smooth", 256, 256, c_dims[lvl].h, c_dims[lvl].w, 3, 1));
  }

  // RPN over every pyramid level: shared 3x3 + objectness/box heads.
  for (int lvl = 0; lvl < 4; ++lvl) {
    const std::string p = "rpn.p" + std::to_string(lvl + 2);
    (void)conv_bn_relu(g, p + ".conv", 256, 256, c_dims[lvl], 3, 1);
    g.add(conv2d(p + ".objectness", 256, 3, c_dims[lvl].h, c_dims[lvl].w, 1,
                 1));
    g.add(conv2d(p + ".boxes", 256, 12, c_dims[lvl].h, c_dims[lvl].w, 1, 1));
  }

  // RoI heads: 200 proposals -> box/class/plane-normal heads.
  constexpr std::int64_t kRois = 200;
  g.add(roi_align("roi.align", kRois, 256, 7));
  g.add(matmul("roi.fc1", kRois, 256 * 7 * 7, 1024));
  g.add(elementwise("roi.act1", kRois * 1024));
  g.add(matmul("roi.fc2", kRois, 1024, 1024));
  g.add(elementwise("roi.act2", kRois * 1024));
  g.add(matmul("roi.cls", kRois, 1024, 2));        // plane / non-plane
  g.add(matmul("roi.bbox", kRois, 1024, 8));
  g.add(matmul("roi.normal", kRois, 1024, 3));     // plane normal anchor

  // Mask head: 100 detections, 14x14 RoIAlign, 4 convs + deconv + mask.
  constexpr std::int64_t kDet = 100;
  g.add(roi_align("mask.align", kDet, 256, 14));
  for (int i = 0; i < 4; ++i) {
    // Per-RoI 14x14x256 conv stack, batched across detections: lower as a
    // conv with batch folded into rows (y = kDet * 14).
    g.add(conv2d("mask.conv" + std::to_string(i), 256, 256, kDet * 14, 14, 3,
                 1));
  }
  g.add(conv2d("mask.deconv", 256, 256, kDet * 28, 28, 2, 1));
  g.add(conv2d("mask.predict", 256, 2, kDet * 28, 28, 1, 1));

  // Depth decoder branch (plane refinement network input): U-Net-ish decoder
  // from C5 back to 1/4 resolution.
  SpatialDims dd = c_dims[3];
  std::int64_t dch = 256;
  for (int s = 0; s < 3; ++s) {
    g.add(upsample("depth.up" + std::to_string(s), dch, dd.h * 2, dd.w * 2));
    dd = {dd.h * 2, dd.w * 2};
    dd = conv_bn_relu(g, "depth.conv" + std::to_string(s), dch, dch / 2, dd, 3,
                      1);
    dch /= 2;
  }
  g.add(conv2d("depth.predict", dch, 1, dd.h, dd.w, 3, 1));
  return g;
}

}  // namespace xrbench::models
