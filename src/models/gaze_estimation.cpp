#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::elementwise;
using costmodel::fully_connected;
using costmodel::ModelGraph;
using costmodel::pool;

/// GE — Gaze estimation: the Eyecod pipeline's backbone instance is
/// FBNet-C (Table 7), an inverted-residual NAS network.
///
/// Input: OpenEDS 2020 downscaled by 1/4 in area (appendix A) -> 320x200
/// eye crops, one stream per eye (binocular gaze estimation; the fused
/// per-eye features regress a single 3D gaze vector).
/// The FBNet-C stage layout follows the published architecture (22 blocks,
/// expansion 1-6, channels 16->352) with the classifier replaced by a
/// 3D-gaze-vector regression head.
ModelGraph build_gaze_estimation() {
  ModelGraph g("GE.FBNetC");
  for (const char* eye : {"l", "r"}) {
  const std::string pfx = std::string(eye) + ".";
  SpatialDims d{200, 320};

  d = conv_bn_relu(g, pfx + "stem", 1, 16, d, 3, 2);  // 100x160

  struct Stage {
    std::int64_t out_ch;
    std::int64_t expand;
    std::int64_t kernel;
    std::int64_t stride;
    int repeat;
  };
  // FBNet-C stage table (TBS blocks), adapted channel schedule.
  const Stage stages[] = {
      {16, 1, 3, 1, 1},   // stage 1
      {24, 6, 3, 2, 4},   // stage 2
      {32, 6, 5, 2, 4},   // stage 3
      {64, 6, 5, 2, 4},   // stage 4
      {112, 6, 5, 1, 4},  // stage 5
      {184, 6, 5, 2, 4},  // stage 6
      {352, 6, 3, 1, 1},  // stage 7
  };

  std::int64_t in_ch = 16;
  int block_id = 0;
  for (const auto& st : stages) {
    for (int r = 0; r < st.repeat; ++r) {
      const std::int64_t stride = (r == 0) ? st.stride : 1;
      d = inverted_residual(g, pfx + "ir" + std::to_string(block_id++),
                            in_ch, st.out_ch, d, st.expand, st.kernel,
                            stride);
      in_ch = st.out_ch;
    }
  }

  // Final 1x1 conv to 1504 (FBNet-C head width) + GAP, per eye.
  d = conv_bn_relu(g, pfx + "head.conv", in_ch, 1504, d, 1, 1);
  g.add(pool(pfx + "head.gap", 1504, 1, 1, static_cast<std::int64_t>(d.h)));
  }
  // Fused binocular regression head over both eyes' embeddings.
  g.add(fully_connected("head.fc", 2 * 1504, 256));
  g.add(elementwise("head.act", 256));
  g.add(fully_connected("head.gaze", 256, 3));  // 3D gaze vector
  return g;
}

}  // namespace xrbench::models
