#pragma once

#include "costmodel/graph.h"
#include "models/task.h"

namespace xrbench::models {

// Individual builders (one translation unit per model, see src/models/).
// Each returns a freshly built layer graph of the Table-7 model instance at
// the appendix-A input resolution (wearable-adjusted downscaling applied).

costmodel::ModelGraph build_hand_tracking();       // HT
costmodel::ModelGraph build_eye_segmentation();    // ES
costmodel::ModelGraph build_gaze_estimation();     // GE
costmodel::ModelGraph build_keyword_detection();   // KD
costmodel::ModelGraph build_speech_recognition();  // SR
costmodel::ModelGraph build_semantic_segmentation();  // SS
costmodel::ModelGraph build_object_detection();    // OD
costmodel::ModelGraph build_action_segmentation(); // AS
costmodel::ModelGraph build_depth_estimation();    // DE
costmodel::ModelGraph build_depth_refinement();    // DR
costmodel::ModelGraph build_plane_detection();     // PD

/// Builds a fresh graph for `task`.
costmodel::ModelGraph build_model(TaskId task);

/// Cached registry: returns a shared immutable graph for `task`. The graphs
/// are static so callers can hold references for the process lifetime.
const costmodel::ModelGraph& model_graph(TaskId task);

}  // namespace xrbench::models
