#pragma once

#include <cstdint>
#include <string>

#include "costmodel/graph.h"

namespace xrbench::models {

/// Shared network-block builders used by the model zoo. Each helper appends
/// the layers of one architectural block to `g` and returns the (possibly
/// downsampled) output spatial size.
struct SpatialDims {
  std::int64_t h = 0;
  std::int64_t w = 0;
};

/// Conv-BN-ReLU. Returns output dims (same-padding semantics).
SpatialDims conv_bn_relu(costmodel::ModelGraph& g, const std::string& name,
                         std::int64_t in_ch, std::int64_t out_ch,
                         SpatialDims in, std::int64_t kernel,
                         std::int64_t stride = 1);

/// Basic ResNet block (two 3x3 convs + skip). `stride` applies to the first
/// conv; a 1x1 projection is added when shape changes.
SpatialDims residual_block(costmodel::ModelGraph& g, const std::string& name,
                           std::int64_t in_ch, std::int64_t out_ch,
                           SpatialDims in, std::int64_t stride = 1);

/// ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand x4 + skip).
SpatialDims bottleneck_block(costmodel::ModelGraph& g, const std::string& name,
                             std::int64_t in_ch, std::int64_t mid_ch,
                             SpatialDims in, std::int64_t stride = 1);

/// MobileNet-style inverted residual: 1x1 expand, kxk depthwise (stride),
/// 1x1 project, optional skip.
SpatialDims inverted_residual(costmodel::ModelGraph& g, const std::string& name,
                              std::int64_t in_ch, std::int64_t out_ch,
                              SpatialDims in, std::int64_t expand_ratio,
                              std::int64_t kernel = 3, std::int64_t stride = 1);

/// Transformer encoder block over `tokens` tokens of width `dim`:
/// LN, QKV projection, attention matmuls + softmax, output projection,
/// LN, FFN (dim -> ffn_dim -> dim), residual adds.
void transformer_block(costmodel::ModelGraph& g, const std::string& name,
                       std::int64_t tokens, std::int64_t dim,
                       std::int64_t ffn_dim, std::int64_t num_heads,
                       std::int64_t kv_tokens = 0);

/// U-Net style up block: upsample 2x then two 3x3 convs (after skip concat).
SpatialDims unet_up_block(costmodel::ModelGraph& g, const std::string& name,
                          std::int64_t in_ch, std::int64_t skip_ch,
                          std::int64_t out_ch, SpatialDims in);

}  // namespace xrbench::models
