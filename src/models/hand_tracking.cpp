#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::elementwise;
using costmodel::fully_connected;
using costmodel::matmul;
using costmodel::ModelGraph;
using costmodel::pool;
using costmodel::upsample;

/// HT — Hand Shape/Pose estimation (Ge et al., CVPR 2019): a 3D hand
/// shape/pose network combining a stacked-hourglass 2D feature extractor,
/// a residual feature encoder, and a Graph CNN mesh decoder.
///
/// Input: Stereo Hand Pose Tracking Benchmark frames downscaled by 1/2
/// (appendix A): 640x480 -> 320x240, from which a 256x256 hand crop feeds
/// the network.
ModelGraph build_hand_tracking() {
  ModelGraph g("HT.HandShapePose");
  SpatialDims d{256, 256};
  const std::string vp;  // single-view front end (mono hand crop)

  // Stem: 7x7/2 conv + residual + pool, hourglass-style front end.
  d = conv_bn_relu(g, vp + "stem", 3, 64, d, 7, 2);       // 128x128
  d = residual_block(g, vp + "stem.res", 64, 128, d, 1);
  g.add(pool(vp + "stem.pool", 128, d.h / 2, d.w / 2, 2));
  d = {d.h / 2, d.w / 2};                                  // 64x64

  // Two stacked hourglass modules (encoder-decoder with skips).
  for (int hg = 0; hg < 2; ++hg) {
    const std::string p = vp + "hg" + std::to_string(hg);
    SpatialDims e = d;
    // Encoder: 3 downsampling residual stages 32->16->8->4.
    e = residual_block(g, p + ".down0", 128, 128, e, 2);
    e = residual_block(g, p + ".down1", 128, 256, e, 2);
    e = residual_block(g, p + ".down2", 256, 256, e, 2);
    // Bottleneck.
    e = residual_block(g, p + ".mid", 256, 256, e, 1);
    // Decoder: 3 upsampling stages back to 32x32.
    e = unet_up_block(g, p + ".up0", 256, 256, 256, e);
    e = unet_up_block(g, p + ".up1", 256, 256, 128, e);
    e = unet_up_block(g, p + ".up2", 128, 128, 128, e);
    // Intermediate heatmap head (21 joints).
    g.add(conv2d(p + ".heatmap", 128, 21, e.h, e.w, 1, 1));
    g.add(elementwise(p + ".remap", 128 * e.h * e.w));
  }

  // Residual encoder over heatmaps + features -> latent for the Graph CNN.
  SpatialDims e = d;
  e = residual_block(g, "enc.res0", 128 + 21, 256, e, 2);  // 16x16
  e = residual_block(g, "enc.res1", 256, 512, e, 2);       // 8x8
  g.add(pool("enc.gap", 512, 1, 1, 8));
  g.add(fully_connected("enc.latent", 512, 1024));

  // Graph CNN mesh decoder: 3 graph-conv stages on an upsampled mesh
  // (80 -> 320 -> 1280 vertices), each graph conv = dense feature matmul
  // (Chebyshev support folded into the feature dimension).
  const std::int64_t feat[4] = {128, 128, 64, 32};
  const std::int64_t verts[4] = {80, 320, 1280, 1280};
  g.add(fully_connected("gcn.init", 1024, 80 * feat[0]));
  for (int s = 0; s < 3; ++s) {
    const std::string p = "gcn" + std::to_string(s);
    g.add(matmul(p + ".conv1", verts[s + 1], feat[s], feat[s + 1]));
    g.add(matmul(p + ".conv2", verts[s + 1], feat[s + 1], feat[s + 1]));
    g.add(elementwise(p + ".act", verts[s + 1] * feat[s + 1]));
  }
  // 3D vertex coordinate head + pose regressor (21 joints x 3).
  g.add(matmul("head.verts", 1280, 32, 3));
  g.add(fully_connected("head.pose", 1024, 63));
  return g;
}

}  // namespace xrbench::models
