#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::dwconv2d;
using costmodel::elementwise;
using costmodel::layer_norm;
using costmodel::matmul;
using costmodel::ModelGraph;
using costmodel::softmax;
using costmodel::upsample;

namespace {

/// HRViT attention block: windowed (cross-shaped) self-attention + MixCFN
/// (FFN with a depthwise 3x3 between the two projections).
void hrvit_block(ModelGraph& g, const std::string& name, std::int64_t h,
                 std::int64_t w, std::int64_t dim, std::int64_t window) {
  const std::int64_t tokens = h * w;
  g.add(layer_norm(name + ".ln1", tokens, dim));
  g.add(matmul(name + ".qkv", tokens, dim, 3 * dim));
  // Windowed attention: each token attends within a `window`-sized stripe.
  g.add(matmul(name + ".qk", tokens, dim, window));
  g.add(softmax(name + ".softmax", tokens, window));
  g.add(matmul(name + ".av", tokens, window, dim));
  g.add(matmul(name + ".proj", tokens, dim, dim));
  g.add(elementwise(name + ".add1", tokens * dim));
  // MixCFN: expand 4x with a depthwise conv in between.
  g.add(layer_norm(name + ".ln2", tokens, dim));
  g.add(matmul(name + ".ffn1", tokens, dim, 4 * dim));
  g.add(dwconv2d(name + ".ffn_dw", 4 * dim, h, w, 3, 1));
  g.add(matmul(name + ".ffn2", tokens, 4 * dim, dim));
  g.add(elementwise(name + ".add2", tokens * dim));
}

}  // namespace

/// SS — HRViT-b1 (Gu et al., CVPR 2022): multi-scale high-resolution vision
/// transformer for semantic segmentation. HRViT keeps a convolutional
/// high-resolution branch while lower-resolution branches run efficient
/// cross-shaped-window attention blocks; branches exchange features through
/// fusion convolutions.
///
/// Input: Cityscapes at wearable-adjusted 512x1024 (the paper keeps SS on
/// Cityscapes; we halve the crop to stay in a mobile compute envelope,
/// consistent with appendix A's downscaling of the other vision tasks).
ModelGraph build_semantic_segmentation() {
  ModelGraph g("SS.HRViT-b1");
  SpatialDims d{512, 1024};

  // Convolutional patch stem: two stride-2 convs -> 1/4 resolution.
  d = conv_bn_relu(g, "stem.conv1", 3, 32, d, 3, 2);
  d = conv_bn_relu(g, "stem.conv2", 32, 64, d, 3, 2);  // 128x256

  // Branch resolutions and channel widths (HRViT-b1 schedule).
  const std::int64_t h4 = 128, w4 = 256;   // 1/4,  32 ch (conv branch)
  const std::int64_t h8 = 64, w8 = 128;    // 1/8,  64 ch
  const std::int64_t h16 = 32, w16 = 64;   // 1/16, 128 ch
  const std::int64_t h32 = 16, w32 = 32;   // 1/32, 256 ch

  // Stage 1: high-res conv branch only.
  for (int i = 0; i < 2; ++i) {
    (void)residual_block(g, "s1.hr" + std::to_string(i), 64, 64,
                         SpatialDims{h4, w4}, 1);
  }

  // Stage 2: add the 1/8 attention branch.
  g.add(conv2d("s2.trans8", 64, 64, h4, w4, 3, 2));
  for (int i = 0; i < 2; ++i) {
    (void)residual_block(g, "s2.hr" + std::to_string(i), 64, 32,
                         SpatialDims{h4, w4}, 1);
    hrvit_block(g, "s2.attn8." + std::to_string(i), h8, w8, 64, 128);
  }
  g.add(conv2d("s2.fuse", 64 + 32, 64, h8, w8, 1, 1));

  // Stage 3: add the 1/16 branch.
  g.add(conv2d("s3.trans16", 64, 128, h8, w8, 3, 2));
  for (int i = 0; i < 3; ++i) {
    (void)residual_block(g, "s3.hr" + std::to_string(i), 32, 32,
                         SpatialDims{h4, w4}, 1);
    hrvit_block(g, "s3.attn8." + std::to_string(i), h8, w8, 64, 128);
    hrvit_block(g, "s3.attn16." + std::to_string(i), h16, w16, 128, 128);
  }
  g.add(conv2d("s3.fuse", 128 + 64, 128, h16, w16, 1, 1));

  // Stage 4: add the 1/32 branch.
  g.add(conv2d("s4.trans32", 128, 256, h16, w16, 3, 2));
  for (int i = 0; i < 2; ++i) {
    (void)residual_block(g, "s4.hr" + std::to_string(i), 32, 32,
                         SpatialDims{h4, w4}, 1);
    hrvit_block(g, "s4.attn8." + std::to_string(i), h8, w8, 64, 128);
    hrvit_block(g, "s4.attn16." + std::to_string(i), h16, w16, 128, 128);
    hrvit_block(g, "s4.attn32." + std::to_string(i), h32, w32, 256, 64);
  }

  // Segmentation head (SegFormer-style): project all branches to 128 ch at
  // 1/4 resolution, concat, fuse, classify 19 Cityscapes classes.
  g.add(upsample("head.up8", 64, h4, w4));
  g.add(upsample("head.up16", 128, h4, w4));
  g.add(upsample("head.up32", 256, h4, w4));
  g.add(conv2d("head.fuse", 32 + 64 + 128 + 256, 128, h4, w4, 1, 1));
  g.add(elementwise("head.act", 128 * h4 * w4));
  g.add(conv2d("head.classes", 128, 19, h4, w4, 1, 1));
  g.add(upsample("head.final_up", 19, 512, 1024));
  return g;
}

}  // namespace xrbench::models
