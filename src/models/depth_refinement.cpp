#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::deconv2d;
using costmodel::elementwise;
using costmodel::ModelGraph;
using costmodel::pool;

/// DR — Sparse-to-Dense (Ma & Karaman, ICRA 2018), RGBd-200 variant:
/// dense depth prediction from an RGB frame plus ~200 sparse lidar depth
/// samples. ResNet-18-style encoder over the 4-channel RGBd input and a
/// de-convolutional decoder (the multi-modal model of Table 3: camera +
/// lidar inputs).
///
/// Input: KITTI center crop at the paper's 228x304 network resolution.
ModelGraph build_depth_refinement() {
  ModelGraph g("DR.Sparse-to-Dense-RGBd200");
  SpatialDims d{228, 304};

  // ResNet-18 encoder on RGB + sparse-depth channel.
  d = conv_bn_relu(g, "stem", 4, 64, d, 7, 2);  // 114x152
  g.add(pool("stem.pool", 64, d.h / 2, d.w / 2, 2));
  d = {d.h / 2, d.w / 2};  // 57x76

  const std::int64_t chans[4] = {64, 128, 256, 512};
  std::int64_t in_ch = 64;
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < 2; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      d = residual_block(g,
                         "res" + std::to_string(stage) + "_" +
                             std::to_string(b),
                         in_ch, chans[stage], d, stride);
      in_ch = chans[stage];
    }
  }
  // Bottleneck 1x1.
  (void)conv_bn_relu(g, "enc.bottleneck", 512, 512, d, 1, 1);

  // Decoder: 4 deconv (up-projection) stages 512->256->128->64->32.
  std::int64_t dec_ch = 512;
  for (int s = 0; s < 4; ++s) {
    const std::int64_t out_ch = dec_ch / 2;
    g.add(deconv2d("dec" + std::to_string(s), dec_ch, out_ch, d.h, d.w, 3, 2));
    d = {d.h * 2, d.w * 2};
    g.add(elementwise("dec" + std::to_string(s) + ".act", out_ch * d.h * d.w));
    dec_ch = out_ch;
  }

  // Final depth regression + bilinear resize to input resolution.
  g.add(conv2d("head.depth", dec_ch, 1, d.h, d.w, 3, 1));
  g.add(costmodel::upsample("head.resize", 1, 228, 304));
  return g;
}

}  // namespace xrbench::models
