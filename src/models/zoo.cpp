#include "models/zoo.h"

#include <array>
#include <memory>
#include <stdexcept>

namespace xrbench::models {

costmodel::ModelGraph build_model(TaskId task) {
  switch (task) {
    case TaskId::kHT: return build_hand_tracking();
    case TaskId::kES: return build_eye_segmentation();
    case TaskId::kGE: return build_gaze_estimation();
    case TaskId::kKD: return build_keyword_detection();
    case TaskId::kSR: return build_speech_recognition();
    case TaskId::kSS: return build_semantic_segmentation();
    case TaskId::kOD: return build_object_detection();
    case TaskId::kAS: return build_action_segmentation();
    case TaskId::kDE: return build_depth_estimation();
    case TaskId::kDR: return build_depth_refinement();
    case TaskId::kPD: return build_plane_detection();
  }
  throw std::invalid_argument("build_model: unknown task");
}

const costmodel::ModelGraph& model_graph(TaskId task) {
  // Lazily built, cached per task. Thread-safe via magic statics is not
  // enough for an indexed array, so guard with function-local statics.
  static const auto cache = [] {
    std::array<std::unique_ptr<costmodel::ModelGraph>, kNumTasks> graphs;
    for (TaskId t : all_tasks()) {
      graphs[task_index(t)] =
          std::make_unique<costmodel::ModelGraph>(build_model(t));
    }
    return graphs;
  }();
  return *cache[task_index(task)];
}

}  // namespace xrbench::models
