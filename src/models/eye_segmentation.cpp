#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::elementwise;
using costmodel::ModelGraph;
using costmodel::pool;

/// ES — RITNet (Chaudhary et al., ICCVW 2019): a compact U-Net-style eye
/// segmentation network (~0.25M params) with dense blocks of 32-channel
/// 3x3 convolutions, 4 down-blocks + bottleneck + 4 up-blocks.
///
/// Input: OpenEDS 2019 downscaled by 1/4 in area (appendix A): 640x400 ->
/// 320x200 grayscale, one stream per eye (XR devices run binocular eye
/// tracking; one ES inference segments both eye crops).
ModelGraph build_eye_segmentation() {
  ModelGraph g("ES.RITNet");
  constexpr std::int64_t kCh = 32;
  for (const char* eye : {"left", "right"}) {
  const std::string pfx = std::string(eye) + ".";
  SpatialDims d{200, 320};

  // Down path: dense block (4 chained 3x3 convs at 32 ch) then 2x avgpool.
  auto dense_block = [&g](const std::string& name, std::int64_t in_ch,
                          SpatialDims dims) {
    SpatialDims cur = dims;
    std::int64_t ch = in_ch;
    for (int i = 0; i < 4; ++i) {
      cur = conv_bn_relu(g, name + ".conv" + std::to_string(i), ch, kCh, cur,
                         3, 1);
      ch = kCh;
    }
    return cur;
  };

  d = dense_block(pfx + "down0", 1, d);
  SpatialDims s0 = d;
  g.add(pool(pfx + "down0.pool", kCh, s0.h / 2, s0.w / 2, 2));
  d = {s0.h / 2, s0.w / 2};

  d = dense_block(pfx + "down1", kCh, d);
  SpatialDims s1 = d;
  g.add(pool(pfx + "down1.pool", kCh, s1.h / 2, s1.w / 2, 2));
  d = {s1.h / 2, s1.w / 2};

  d = dense_block(pfx + "down2", kCh, d);
  SpatialDims s2 = d;
  g.add(pool(pfx + "down2.pool", kCh, s2.h / 2, s2.w / 2, 2));
  d = {s2.h / 2, s2.w / 2};

  d = dense_block(pfx + "down3", kCh, d);
  SpatialDims s3 = d;
  g.add(pool(pfx + "down3.pool", kCh, s3.h / 2, s3.w / 2, 2));
  d = {s3.h / 2, s3.w / 2};

  // Bottleneck.
  d = dense_block(pfx + "bottleneck", kCh, d);

  // Up path with skip concatenation (in_ch = 32 up + 32 skip).
  d = unet_up_block(g, pfx + "up3", kCh, kCh, kCh, d);
  d = unet_up_block(g, pfx + "up2", kCh, kCh, kCh, d);
  d = unet_up_block(g, pfx + "up1", kCh, kCh, kCh, d);
  d = unet_up_block(g, pfx + "up0", kCh, kCh, kCh, d);

  // Per-pixel 4-class head (background, sclera, iris, pupil).
  g.add(conv2d(pfx + "head.classes", kCh, 4, d.h, d.w, 1, 1));
  g.add(elementwise(pfx + "head.softmax", 4 * d.h * d.w));
  }
  return g;
}

}  // namespace xrbench::models
