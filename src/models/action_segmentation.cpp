#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::elementwise;
using costmodel::ModelGraph;

/// AS — ED-TCN (Lea et al., CVPR 2017): encoder-decoder temporal
/// convolutional network for action segmentation on GTEA.
///
/// Input: a sliding window of T=64 frame-level feature vectors (2048-d
/// spatial CNN features, computed upstream in the pipeline). 1D temporal
/// convolutions are lowered as conv2d with a singleton row and the temporal
/// kernel on the column axis.
ModelGraph build_action_segmentation() {
  ModelGraph g("AS.ED-TCN");
  constexpr std::int64_t kT = 64;
  constexpr std::int64_t kFeat = 2048;
  constexpr std::int64_t kTemporalKernel = 25;

  auto temporal_conv = [&g](const std::string& name, std::int64_t in_ch,
                            std::int64_t out_ch, std::int64_t t) {
    costmodel::Layer l = conv2d(name, in_ch, out_ch, 1, t, 1, 1);
    l.s = kTemporalKernel;
    g.add(l);
    g.add(elementwise(name + ".norm_relu", out_ch * t));
  };

  // Feature reduction then encoder: temporal conv + 2x maxpool, twice.
  g.add(conv2d("enc.reduce", kFeat, 96, 1, kT, 1, 1));
  temporal_conv("enc0.tconv", 96, 96, kT);
  g.add(costmodel::pool("enc0.pool", 96, 1, kT / 2, 2));
  temporal_conv("enc1.tconv", 96, 192, kT / 2);
  g.add(costmodel::pool("enc1.pool", 192, 1, kT / 4, 2));

  // Decoder: upsample + temporal conv, back to T.
  g.add(costmodel::upsample("dec1.up", 192, 1, kT / 2));
  temporal_conv("dec1.tconv", 192, 96, kT / 2);
  g.add(costmodel::upsample("dec0.up", 96, 1, kT));
  temporal_conv("dec0.tconv", 96, 96, kT);

  // Per-frame classification over 11 GTEA action classes.
  g.add(conv2d("head.classes", 96, 11, 1, kT, 1, 1));
  g.add(elementwise("head.softmax", 11 * kT));
  return g;
}

}  // namespace xrbench::models
