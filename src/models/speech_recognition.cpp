#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::elementwise;
using costmodel::fully_connected;
using costmodel::matmul;
using costmodel::ModelGraph;

/// SR — Emformer EM-24L (Shi et al., ICASSP 2021): an efficient-memory
/// streaming transformer acoustic model for low-latency ASR.
///
/// One inference processes one streaming segment. The paper's 3 Hz target
/// rate models the 320 ms left-context chunking of the original work
/// (Section 3.3), so a segment covers ~333 ms of audio: 32 acoustic frames
/// (10 ms hop) stacked 4x -> 8 segment tokens + right-context lookahead,
/// attending over segment + memory bank + left-context keys.
///
/// EM-24L: 24 layers, d_model 512, FFN 2048, 8 heads (~80M params).
ModelGraph build_speech_recognition() {
  ModelGraph g("SR.Emformer-EM24L");
  constexpr std::int64_t kLayers = 24;
  constexpr std::int64_t kDim = 512;
  constexpr std::int64_t kFfn = 2048;
  constexpr std::int64_t kHeads = 8;
  // Query tokens per segment: 8 segment + 2 right-context + 1 memory = 11.
  constexpr std::int64_t kQueryTokens = 11;
  // Keys/values: segment + right context + memory bank + cached left
  // context (320 ms -> 8 tokens).
  constexpr std::int64_t kKvTokens = 11 + 8;

  // Front end: 80-dim log-mel frames, 4x time-stack + linear projection.
  g.add(fully_connected("frontend.proj", 80 * 4, kDim));
  g.add(elementwise("frontend.dropout", kQueryTokens * kDim));

  for (std::int64_t l = 0; l < kLayers; ++l) {
    transformer_block(g, "layer" + std::to_string(l), kQueryTokens, kDim,
                      kFfn, kHeads, kKvTokens);
  }

  // Output: LayerNorm + projection to 4096 sentencepiece targets + softmax.
  g.add(costmodel::layer_norm("head.ln", kQueryTokens, kDim));
  g.add(matmul("head.vocab", kQueryTokens, kDim, 4096));
  g.add(costmodel::softmax("head.softmax", kQueryTokens, 4096));
  return g;
}

}  // namespace xrbench::models
