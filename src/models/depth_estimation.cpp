#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::elementwise;
using costmodel::ModelGraph;
using costmodel::upsample;

/// DE — MiDaS v2.1 small (Ranftl et al., 2020): monocular relative depth
/// estimation with an EfficientNet-Lite3 backbone and a lightweight RefineNet
/// style decoder (the `midas_v21_small` release).
///
/// Input: KITTI frames letterboxed to the MiDaS-small 256x256 resolution.
ModelGraph build_depth_estimation() {
  ModelGraph g("DE.MiDaS-v21-small");
  SpatialDims d{256, 256};

  // EfficientNet-Lite3 backbone.
  d = conv_bn_relu(g, "stem", 3, 32, d, 3, 2);  // 128x128

  struct Stage {
    std::int64_t out_ch;
    std::int64_t expand;
    std::int64_t kernel;
    std::int64_t stride;
    int repeat;
  };
  const Stage stages[] = {
      {24, 1, 3, 1, 2},  {32, 6, 3, 2, 3},  {48, 6, 5, 2, 3},
      {96, 6, 3, 2, 5},  {136, 6, 5, 1, 5}, {232, 6, 5, 2, 6},
  };
  std::int64_t in_ch = 32;
  int block_id = 0;
  // Record skip resolutions feeding the decoder.
  SpatialDims skips[4] = {};
  std::int64_t skip_ch[4] = {};
  int skip_idx = 0;
  for (const auto& st : stages) {
    for (int r = 0; r < st.repeat; ++r) {
      const std::int64_t stride = (r == 0) ? st.stride : 1;
      d = inverted_residual(g, "ir" + std::to_string(block_id++), in_ch,
                            st.out_ch, d, st.expand, st.kernel, stride);
      in_ch = st.out_ch;
    }
    if (st.out_ch == 32 || st.out_ch == 48 || st.out_ch == 136 ||
        st.out_ch == 232) {
      if (skip_idx < 4) {
        skips[skip_idx] = d;
        skip_ch[skip_idx] = st.out_ch;
        ++skip_idx;
      }
    }
  }

  // RefineNet-small decoder: fuse skips from deep to shallow at 64 ch.
  constexpr std::int64_t kDec = 64;
  SpatialDims cur = skips[3];
  g.add(conv2d("dec.reduce3", skip_ch[3], kDec, cur.h, cur.w, 3, 1));
  for (int s = 2; s >= 0; --s) {
    const std::string p = "dec.fuse" + std::to_string(s);
    g.add(upsample(p + ".up", kDec, skips[s].h, skips[s].w));
    g.add(conv2d(p + ".skip", skip_ch[s], kDec, skips[s].h, skips[s].w, 3, 1));
    g.add(elementwise(p + ".add", kDec * skips[s].h * skips[s].w));
    (void)conv_bn_relu(g, p + ".conv", kDec, kDec, skips[s], 3, 1);
    cur = skips[s];
  }

  // Output head: upsample to half input, 2 convs, final full-res depth map.
  g.add(upsample("head.up", kDec, 128, 128));
  (void)conv_bn_relu(g, "head.conv1", kDec, 32, SpatialDims{128, 128}, 3, 1);
  g.add(conv2d("head.depth", 32, 1, 128, 128, 3, 1));
  g.add(upsample("head.final_up", 1, 256, 256));
  return g;
}

}  // namespace xrbench::models
