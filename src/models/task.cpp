#include "models/task.h"

#include <cctype>
#include <stdexcept>

namespace xrbench::models {

const std::array<TaskId, kNumTasks>& all_tasks() {
  static const std::array<TaskId, kNumTasks> tasks = {
      TaskId::kHT, TaskId::kES, TaskId::kGE, TaskId::kKD,
      TaskId::kSR, TaskId::kSS, TaskId::kOD, TaskId::kAS,
      TaskId::kDE, TaskId::kDR, TaskId::kPD};
  return tasks;
}

const char* task_code(TaskId t) {
  switch (t) {
    case TaskId::kHT: return "HT";
    case TaskId::kES: return "ES";
    case TaskId::kGE: return "GE";
    case TaskId::kKD: return "KD";
    case TaskId::kSR: return "SR";
    case TaskId::kSS: return "SS";
    case TaskId::kOD: return "OD";
    case TaskId::kAS: return "AS";
    case TaskId::kDE: return "DE";
    case TaskId::kDR: return "DR";
    case TaskId::kPD: return "PD";
  }
  return "?";
}

const char* task_name(TaskId t) {
  switch (t) {
    case TaskId::kHT: return "Hand Tracking";
    case TaskId::kES: return "Eye Segmentation";
    case TaskId::kGE: return "Gaze Estimation";
    case TaskId::kKD: return "Keyword Detection";
    case TaskId::kSR: return "Speech Recognition";
    case TaskId::kSS: return "Semantic Segmentation";
    case TaskId::kOD: return "Object Detection";
    case TaskId::kAS: return "Action Segmentation";
    case TaskId::kDE: return "Depth Estimation";
    case TaskId::kDR: return "Depth Refinement";
    case TaskId::kPD: return "Plane Detection";
  }
  return "?";
}

const char* model_instance_name(TaskId t) {
  switch (t) {
    case TaskId::kHT: return "Hand Shape/Pose CNN";
    case TaskId::kES: return "RITNet";
    case TaskId::kGE: return "FBNet-C (Eyecod)";
    case TaskId::kKD: return "res8-narrow";
    case TaskId::kSR: return "Emformer EM-24L";
    case TaskId::kSS: return "HRViT-b1";
    case TaskId::kOD: return "Faster-RCNN-FBNetV3A";
    case TaskId::kAS: return "ED-TCN";
    case TaskId::kDE: return "MiDaS v21 small";
    case TaskId::kDR: return "Sparse-to-Dense RGBd-200";
    case TaskId::kPD: return "PlaneRCNN";
  }
  return "?";
}

const char* task_category(TaskId t) {
  switch (t) {
    case TaskId::kHT:
    case TaskId::kES:
    case TaskId::kGE:
      return "Interaction";
    case TaskId::kKD:
    case TaskId::kSR:
      return "Interaction/Context";
    case TaskId::kSS:
    case TaskId::kOD:
    case TaskId::kAS:
      return "Context Understanding";
    case TaskId::kDE:
    case TaskId::kDR:
    case TaskId::kPD:
      return "World Locking";
  }
  return "?";
}

TaskId parse_task_code(const std::string& code) {
  std::string u;
  for (char c : code) u += static_cast<char>(std::toupper(c));
  for (TaskId t : all_tasks()) {
    if (u == task_code(t)) return t;
  }
  throw std::invalid_argument("parse_task_code: unknown task code '" + code +
                              "'");
}

std::size_t task_index(TaskId t) {
  const auto& tasks = all_tasks();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] == t) return i;
  }
  return 0;  // unreachable for valid enum values
}

}  // namespace xrbench::models
