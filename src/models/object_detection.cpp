#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::elementwise;
using costmodel::fully_connected;
using costmodel::ModelGraph;
using costmodel::roi_align;

/// OD — D2Go Faster-RCNN-FBNetV3A (Meta, 2022): an on-device two-stage
/// detector with an FBNetV3-A inverted-residual backbone, a C4-style RPN,
/// and a lightweight RoI head.
///
/// Input: COCO frames at the D2Go mobile resolution 320x320.
ModelGraph build_object_detection() {
  ModelGraph g("OD.FasterRCNN-FBNetV3A");
  SpatialDims d{320, 320};

  // FBNetV3-A backbone (stages through 1/16; C4 head consumes stage 4).
  d = conv_bn_relu(g, "stem", 3, 16, d, 3, 2);  // 160x160

  struct Stage {
    std::int64_t out_ch;
    std::int64_t expand;
    std::int64_t kernel;
    std::int64_t stride;
    int repeat;
  };
  const Stage stages[] = {
      {16, 1, 3, 1, 2},  {24, 4, 3, 2, 4},  {40, 4, 5, 2, 4},
      {72, 5, 3, 2, 4},  {120, 5, 5, 1, 6}, {184, 6, 3, 2, 6},
  };
  std::int64_t in_ch = 16;
  int block_id = 0;
  SpatialDims c4 = d;
  for (const auto& st : stages) {
    for (int r = 0; r < st.repeat; ++r) {
      const std::int64_t stride = (r == 0) ? st.stride : 1;
      d = inverted_residual(g, "ir" + std::to_string(block_id++), in_ch,
                            st.out_ch, d, st.expand, st.kernel, stride);
      in_ch = st.out_ch;
      if (st.out_ch == 120) c4 = d;  // 1/16 feature map feeding the RPN
    }
  }

  // RPN on the 1/16 feature map: 3x3 conv + objectness/box heads,
  // 15 anchors per location.
  (void)conv_bn_relu(g, "rpn.conv", 120, 256, c4, 3, 1);
  g.add(conv2d("rpn.objectness", 256, 15, c4.h, c4.w, 1, 1));
  g.add(conv2d("rpn.boxes", 256, 60, c4.h, c4.w, 1, 1));
  g.add(elementwise("rpn.nms", 15 * c4.h * c4.w));

  // RoI head: 100 proposals, RoIAlign to 7x7, shared conv + per-class heads.
  constexpr std::int64_t kRois = 100;
  g.add(roi_align("roi.align", kRois, 120, 7));
  // Per-RoI conv stack folded into a matmul over RoI batch:
  // (100 x (120*7*7)) * ((120*7*7) -> 1024).
  g.add(costmodel::matmul("roi.fc1", kRois, 120 * 7 * 7, 1024));
  g.add(elementwise("roi.act1", kRois * 1024));
  g.add(costmodel::matmul("roi.fc2", kRois, 1024, 1024));
  g.add(elementwise("roi.act2", kRois * 1024));
  g.add(costmodel::matmul("roi.cls", kRois, 1024, 81));   // 80 classes + bg
  g.add(costmodel::matmul("roi.bbox", kRois, 1024, 320)); // 80 x 4 deltas
  return g;
}

}  // namespace xrbench::models
