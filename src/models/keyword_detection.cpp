#include "costmodel/layer.h"
#include "models/blocks.h"
#include "models/zoo.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::elementwise;
using costmodel::fully_connected;
using costmodel::ModelGraph;
using costmodel::pool;

/// KD — res8-narrow (Tang & Lin, ICASSP 2018): a tiny residual CNN for
/// small-footprint keyword spotting on Google Speech Commands (~20k params).
///
/// Input: 1s audio -> 101x40 MFCC map, 1 channel. res8-narrow: 19-channel
/// 3x3 convs, 3 residual blocks, 4x3 average pooling front end.
ModelGraph build_keyword_detection() {
  ModelGraph g("KD.res8-narrow");
  constexpr std::int64_t kCh = 19;
  SpatialDims d{101, 40};

  d = conv_bn_relu(g, "stem", 1, kCh, d, 3, 1);
  // res8 applies a 4x3 average pool after the stem.
  g.add(pool("stem.avgpool", kCh, d.h / 4, d.w / 3, 2));
  d = {d.h / 4, d.w / 3};  // ~25x13

  for (int b = 0; b < 3; ++b) {
    d = residual_block(g, "res" + std::to_string(b), kCh, kCh, d, 1);
  }

  g.add(pool("head.gap", kCh, 1, 1, static_cast<std::int64_t>(d.h)));
  g.add(fully_connected("head.fc", kCh, 12));  // 12 keyword classes
  g.add(elementwise("head.softmax", 12));
  return g;
}

}  // namespace xrbench::models
