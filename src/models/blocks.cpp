#include "models/blocks.h"

#include "costmodel/layer.h"

namespace xrbench::models {

using costmodel::conv2d;
using costmodel::dwconv2d;
using costmodel::elementwise;
using costmodel::layer_norm;
using costmodel::matmul;
using costmodel::ModelGraph;
using costmodel::softmax;
using costmodel::upsample;

namespace {
std::int64_t out_dim(std::int64_t in, std::int64_t stride) {
  return (in + stride - 1) / stride;
}
}  // namespace

SpatialDims conv_bn_relu(ModelGraph& g, const std::string& name,
                         std::int64_t in_ch, std::int64_t out_ch,
                         SpatialDims in, std::int64_t kernel,
                         std::int64_t stride) {
  g.add(conv2d(name + ".conv", in_ch, out_ch, in.h, in.w, kernel, stride));
  const SpatialDims out{out_dim(in.h, stride), out_dim(in.w, stride)};
  g.add(elementwise(name + ".bn_relu", out_ch * out.h * out.w));
  return out;
}

SpatialDims residual_block(ModelGraph& g, const std::string& name,
                           std::int64_t in_ch, std::int64_t out_ch,
                           SpatialDims in, std::int64_t stride) {
  SpatialDims mid = conv_bn_relu(g, name + ".conv1", in_ch, out_ch, in, 3,
                                 stride);
  SpatialDims out = conv_bn_relu(g, name + ".conv2", out_ch, out_ch, mid, 3, 1);
  if (stride != 1 || in_ch != out_ch) {
    g.add(conv2d(name + ".proj", in_ch, out_ch, in.h, in.w, 1, stride));
  }
  g.add(elementwise(name + ".add", out_ch * out.h * out.w));
  return out;
}

SpatialDims bottleneck_block(ModelGraph& g, const std::string& name,
                             std::int64_t in_ch, std::int64_t mid_ch,
                             SpatialDims in, std::int64_t stride) {
  const std::int64_t out_ch = mid_ch * 4;
  SpatialDims d = conv_bn_relu(g, name + ".reduce", in_ch, mid_ch, in, 1, 1);
  d = conv_bn_relu(g, name + ".conv3x3", mid_ch, mid_ch, d, 3, stride);
  d = conv_bn_relu(g, name + ".expand", mid_ch, out_ch, d, 1, 1);
  if (stride != 1 || in_ch != out_ch) {
    g.add(conv2d(name + ".proj", in_ch, out_ch, in.h, in.w, 1, stride));
  }
  g.add(elementwise(name + ".add", out_ch * d.h * d.w));
  return d;
}

SpatialDims inverted_residual(ModelGraph& g, const std::string& name,
                              std::int64_t in_ch, std::int64_t out_ch,
                              SpatialDims in, std::int64_t expand_ratio,
                              std::int64_t kernel, std::int64_t stride) {
  const std::int64_t mid_ch = in_ch * expand_ratio;
  SpatialDims d = in;
  if (expand_ratio != 1) {
    d = conv_bn_relu(g, name + ".expand", in_ch, mid_ch, in, 1, 1);
  }
  g.add(dwconv2d(name + ".dw", mid_ch, d.h, d.w, kernel, stride));
  d = SpatialDims{out_dim(d.h, stride), out_dim(d.w, stride)};
  g.add(elementwise(name + ".dw_act", mid_ch * d.h * d.w));
  g.add(conv2d(name + ".project", mid_ch, out_ch, d.h, d.w, 1, 1));
  if (stride == 1 && in_ch == out_ch) {
    g.add(elementwise(name + ".add", out_ch * d.h * d.w));
  }
  return d;
}

void transformer_block(ModelGraph& g, const std::string& name,
                       std::int64_t tokens, std::int64_t dim,
                       std::int64_t ffn_dim, std::int64_t num_heads,
                       std::int64_t kv_tokens) {
  if (kv_tokens <= 0) kv_tokens = tokens;
  g.add(layer_norm(name + ".ln1", tokens, dim));
  // Q from `tokens`, K/V from `kv_tokens` (streaming attention has a longer
  // key/value context than query segment).
  g.add(matmul(name + ".q_proj", tokens, dim, dim));
  g.add(matmul(name + ".k_proj", kv_tokens, dim, dim));
  g.add(matmul(name + ".v_proj", kv_tokens, dim, dim));
  // Attention scores and weighted sum; head split keeps total MACs equal to
  // the monolithic matmul, so model as tokens x dim x kv_tokens.
  g.add(matmul(name + ".qk", tokens, dim, kv_tokens));
  g.add(softmax(name + ".softmax", tokens * num_heads,
                kv_tokens / std::max<std::int64_t>(1, num_heads) +
                    1));  // per-head rows; cheap vector op
  g.add(matmul(name + ".av", tokens, kv_tokens, dim));
  g.add(matmul(name + ".out_proj", tokens, dim, dim));
  g.add(elementwise(name + ".add1", tokens * dim));
  g.add(layer_norm(name + ".ln2", tokens, dim));
  g.add(matmul(name + ".ffn1", tokens, dim, ffn_dim));
  g.add(elementwise(name + ".gelu", tokens * ffn_dim));
  g.add(matmul(name + ".ffn2", tokens, ffn_dim, dim));
  g.add(elementwise(name + ".add2", tokens * dim));
}

SpatialDims unet_up_block(ModelGraph& g, const std::string& name,
                          std::int64_t in_ch, std::int64_t skip_ch,
                          std::int64_t out_ch, SpatialDims in) {
  const SpatialDims up{in.h * 2, in.w * 2};
  g.add(upsample(name + ".up", in_ch, up.h, up.w));
  SpatialDims d = conv_bn_relu(g, name + ".conv1", in_ch + skip_ch, out_ch, up,
                               3, 1);
  d = conv_bn_relu(g, name + ".conv2", out_ch, out_ch, d, 3, 1);
  return d;
}

}  // namespace xrbench::models
