#include "fleet/fleet_simulator.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "runtime/policy_registry.h"
#include "util/stats.h"

namespace xrbench::fleet {
namespace {

/// Backlog ordering key: class outranks arrival outranks id. A smaller key
/// is released first — a class-0 session preempts the queue position of
/// every class-1 session, however long the latter has waited.
struct BacklogKey {
  std::size_t priority_class;
  double arrival_ms;
  std::uint64_t session_id;

  bool operator<(const BacklogKey& other) const {
    if (priority_class != other.priority_class) {
      return priority_class < other.priority_class;
    }
    if (arrival_ms != other.arrival_ms) return arrival_ms < other.arrival_ms;
    return session_id < other.session_id;
  }
};

BacklogKey key_of(const SessionSpec& spec) {
  return {spec.priority_class, spec.arrival_ms, spec.session_id};
}

/// Min-heap entry: (free_at, instance index), earliest-free first, index
/// tie-break so equal free times release deterministically.
struct InstanceSlot {
  double free_at_ms;
  std::size_t instance;

  bool operator>(const InstanceSlot& other) const {
    if (free_at_ms != other.free_at_ms) {
      return free_at_ms > other.free_at_ms;
    }
    return instance > other.instance;
  }
};

using InstanceHeap =
    std::priority_queue<InstanceSlot, std::vector<InstanceSlot>,
                        std::greater<InstanceSlot>>;

/// Predicted start time for `spec` arriving at `spec.arrival_ms`: assign
/// every backlog session queued AHEAD of it (all of them outrank a fresh
/// arrival of the same class) to the earliest-freeing instances, then take
/// the next free slot. Uses only the CURRENT pool/backlog state — future
/// higher-priority arrivals can still push an admitted session later than
/// predicted; admission is a forecast, not a reservation.
double predict_start(const SessionSpec& spec, const InstanceHeap& instances,
                     const std::vector<SessionSpec>& backlog) {
  InstanceHeap sim = instances;  // copy; pool sizes are small
  const BacklogKey mine = key_of(spec);
  for (const auto& ahead : backlog) {
    if (!(key_of(ahead) < mine)) break;  // backlog is sorted
    InstanceSlot slot = sim.top();
    sim.pop();
    const double start = std::max(slot.free_at_ms, ahead.arrival_ms);
    slot.free_at_ms = start + ahead.duration_ms;
    sim.push(slot);
  }
  return std::max(spec.arrival_ms, sim.top().free_at_ms);
}

/// The admission consultation: a synthetic request encodes the decision —
/// treq = arrival, deadline = arrival + class wait budget — and now_ms
/// carries the predicted start (see FleetQueueController).
bool consult_admission(runtime::AdmissionController& admission,
                       const SessionSpec& spec, double predicted_start_ms,
                       double wait_budget_ms) {
  runtime::InferenceRequest request;
  request.frame = static_cast<std::int64_t>(spec.session_id);
  request.treq_ms = spec.arrival_ms;
  request.tdl_ms = spec.arrival_ms + wait_budget_ms;
  runtime::DispatchContext ctx;
  ctx.now_ms = predicted_start_ms;
  ctx.request = &request;
  return admission.admit(ctx);
}

double mean_executed_latency_ms(const runtime::ScenarioRunResult& run) {
  double total = 0.0;
  std::int64_t n = 0;
  for (const auto& stats : run.per_model) {
    for (std::size_t i = 0; i < stats.records.size(); ++i) {
      const auto rec = stats.records[i];
      if (rec.dropped) continue;
      total += rec.latency_ms();
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

/// Builds the cross-session summary over `sessions`, restricted to one
/// priority class when `cls` is set. See ServiceStats for the percentile
/// conventions (QoE p99 is the low tail; rejected sessions are QoE 0 and
/// excluded from wait/latency).
ServiceStats summarize(const std::vector<SessionOutcome>& sessions,
                       const std::size_t* cls) {
  ServiceStats stats;
  util::Percentiles qoe;
  util::Percentiles latency;
  util::Percentiles wait;
  double energy = 0.0;
  double qoe_sum = 0.0;
  for (const auto& s : sessions) {
    if (cls != nullptr && s.spec.priority_class != *cls) continue;
    ++stats.offered;
    qoe.add(s.session_qoe);
    qoe_sum += s.session_qoe;
    if (!s.admitted) {
      ++stats.rejected;
      continue;
    }
    ++stats.admitted;
    latency.add(s.latency_ms);
    wait.add(s.wait_ms);
    energy += s.energy_mj;
    stats.resilience.merge(s.resilience);
  }
  if (stats.offered > 0) {
    stats.drop_rate = static_cast<double>(stats.rejected) /
                      static_cast<double>(stats.offered);
    stats.mean_qoe = qoe_sum / static_cast<double>(stats.offered);
  }
  qoe.seal();
  latency.seal();
  wait.seal();
  stats.qoe_p50 = qoe.percentile(50.0);
  stats.qoe_p99 = qoe.percentile(1.0);  // low tail: 99% meet or exceed it
  stats.latency_p50_ms = latency.percentile(50.0);
  stats.latency_p99_ms = latency.percentile(99.0);
  stats.wait_p50_ms = wait.percentile(50.0);
  stats.wait_p99_ms = wait.percentile(99.0);
  if (stats.admitted > 0) {
    stats.energy_per_session_mj =
        energy / static_cast<double>(stats.admitted);
  }
  return stats;
}

}  // namespace

FleetResult FleetSimulator::run(const FleetConfig& config,
                                const hw::AcceleratorSystem& system,
                                const core::HarnessOptions& base) {
  return run(config, resolve_catalog(config), system, base);
}

FleetResult FleetSimulator::run(
    const FleetConfig& config,
    const std::vector<workload::ScenarioProgram>& catalog,
    const hw::AcceleratorSystem& system, const core::HarnessOptions& base) {
  validate_fleet_config(config);
  const auto& registry = runtime::PolicyRegistry::instance();
  // Fail fast on unknown policy names (the registry lists the registered
  // names in the error) before any simulation work.
  auto admission = registry.make_admission(config.admission);
  admission->reset();
  if (!config.scheduler.empty()) registry.make_scheduler(config.scheduler);
  if (!config.governor.empty()) registry.make_governor(config.governor);

  const auto specs = FleetWorkload::generate(config, catalog);

  FleetResult result;
  result.config = config;
  result.sessions.resize(specs.size());

  double total_duration = 0.0;
  for (const auto& spec : specs) total_duration += spec.duration_ms;
  if (!specs.empty()) {
    const double mean_duration_s =
        total_duration / static_cast<double>(specs.size()) / 1000.0;
    result.offered_load = config.arrival_rate_per_s * mean_duration_s /
                          static_cast<double>(config.pool_size);
  }

  // ---- Stage 1: deterministic admission-queue schedule ------------------
  // Serial by construction; service times are known at arrival (a session
  // occupies its instance for exactly its program duration), so no trial
  // has to run yet.
  const std::size_t num_classes = std::max<std::size_t>(
      config.classes.size(), 1);
  auto wait_budget = [&](std::size_t cls) {
    return config.classes.empty() ? PriorityClassSpec{}.wait_budget_ms
                                  : config.classes[cls].wait_budget_ms;
  };

  InstanceHeap instances;
  for (std::size_t i = 0; i < config.pool_size; ++i) {
    instances.push({0.0, i});
  }
  std::vector<SessionSpec> backlog;  // sorted by BacklogKey

  auto start_session = [&](const SessionSpec& spec, double start_ms,
                           std::size_t instance) {
    auto& out = result.sessions[spec.session_id];
    out.admitted = true;
    out.start_ms = start_ms;
    out.wait_ms = start_ms - spec.arrival_ms;
    out.instance = instance;
  };

  // Releases backlog sessions onto every instance freeing at or before
  // `until_ms`, in chronological free order (staged release).
  auto drain_until = [&](double until_ms) {
    while (!backlog.empty() && instances.top().free_at_ms <= until_ms) {
      InstanceSlot slot = instances.top();
      instances.pop();
      const SessionSpec next = backlog.front();
      backlog.erase(backlog.begin());
      const double start = std::max(slot.free_at_ms, next.arrival_ms);
      start_session(next, start, slot.instance);
      slot.free_at_ms = start + next.duration_ms;
      instances.push(slot);
    }
  };

  for (const auto& spec : specs) {
    result.sessions[spec.session_id].spec = spec;
    drain_until(spec.arrival_ms);

    const double predicted_start = predict_start(spec, instances, backlog);
    if (!consult_admission(*admission, spec, predicted_start,
                           wait_budget(spec.priority_class))) {
      continue;  // rejected: the outcome keeps its zeroed defaults
    }
    if (backlog.empty() && instances.top().free_at_ms <= spec.arrival_ms) {
      InstanceSlot slot = instances.top();
      instances.pop();
      start_session(spec, spec.arrival_ms, slot.instance);
      slot.free_at_ms = spec.arrival_ms + spec.duration_ms;
      instances.push(slot);
    } else {
      auto it = std::upper_bound(
          backlog.begin(), backlog.end(), spec,
          [](const SessionSpec& a, const SessionSpec& b) {
            return key_of(a) < key_of(b);
          });
      backlog.insert(it, spec);
    }
  }
  drain_until(std::numeric_limits<double>::infinity());

  // ---- Stage 2: sessions-as-trials fan-out ------------------------------
  // Every admitted session is one program trial at its own seed. All pool
  // instances are copies of one design, so run_program_points groups the
  // whole fleet behind a single CostTable build; results land in
  // session-id (= submission) order — byte-identical at any worker count.
  std::vector<core::ProgramSweepPoint> points;
  std::vector<std::size_t> point_session;
  points.reserve(specs.size());
  for (const auto& spec : specs) {
    if (!result.sessions[spec.session_id].admitted) continue;
    core::ProgramSweepPoint point;
    point.label = "session-" + std::to_string(spec.session_id);
    point.system = system;
    point.options = base;
    point.options.run.seed = spec.seed;
    point.options.dynamic_trials = 1;  // a session IS one trial
    if (!config.scheduler.empty()) point.options.scheduler = config.scheduler;
    if (!config.governor.empty()) point.options.governor = config.governor;
    point.program = catalog[spec.program_rank];
    points.push_back(std::move(point));
    point_session.push_back(spec.session_id);
  }

  auto outcomes = engine_.run_program_points(points);

  for (std::size_t p = 0; p < outcomes.size(); ++p) {
    auto& session = result.sessions[point_session[p]];
    auto& outcome = outcomes[p];
    session.score = outcome.score;
    session.energy_mj = outcome.score.total_energy_mj;
    session.session_qoe =
        outcome.score.qoe *
        (session.spec.duration_ms /
         (session.spec.duration_ms + session.wait_ms));
    session.latency_ms =
        session.wait_ms + mean_executed_latency_ms(outcome.last_run);
    session.resilience = outcome.last_run.resilience;
    if (p + 1 == outcomes.size()) {
      result.last_run = std::move(outcome.last_run);
    }
  }

  // ---- Cross-session service quality ------------------------------------
  result.fleet = summarize(result.sessions, nullptr);
  result.per_class.reserve(num_classes);
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    result.per_class.push_back(summarize(result.sessions, &cls));
  }
  return result;
}

}  // namespace xrbench::fleet
