#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "fleet/fleet_config.h"
#include "workload/scenario_program.h"

namespace xrbench::fleet {

/// Text-config serialization of fleet simulations. Format:
///
///   [fleet]
///   seed = 42
///   arrival_rate_per_s = 4.0
///   zipf_s = 1.0
///   pool_size = 2
///   arrival_window_ms = 4000
///   max_sessions = 256
///   admission = fleet-queue       ; PolicyRegistry admission name
///   scheduler = edf               ; optional per-session override
///   governor = deadline-aware     ; optional per-session override
///   programs = Scenario Hand-Off, Commute   ; optional, popularity-rank
///                                           ; order (comma-separated)
///
///   [class]                       ; one per priority class, rank order
///   weight = 3                    ; (class 0 outranks class 1; omit all
///   wait_budget_ms = 50           ; [class] sections for one default class)
///
/// The file may also carry inline session-program definitions — the full
/// [program]/[faults]/[scenario]/[model]/[phase] grammar of
/// workload::programs_from_document. `programs` names resolve against those
/// inline definitions first, then against the registered programs; when the
/// key is absent, the inline programs (in file order) become the catalog,
/// and with neither the registered extension programs do.
///
/// Every rejected config names the offending key's 1-based source line —
/// unknown [fleet]/[class] keys and unknown section names included.

/// A parsed fleet file: the config plus its resolved program catalog in
/// popularity-rank order (FleetConfig alone cannot carry inline programs).
struct FleetSetup {
  FleetConfig config;
  std::vector<workload::ScenarioProgram> catalog;
};

/// Serializes the [fleet] and [class] sections. Program names are written
/// by reference (not inlined); a config whose names are all registered
/// round-trips through fleet_from_config_text bit-exactly.
std::string to_config_text(const FleetConfig& config);

/// Parses and validates a fleet config, resolving the program catalog.
/// Throws std::invalid_argument with a source line number on malformed
/// input.
FleetSetup fleet_from_config_text(const std::string& text);

void save_fleet(const FleetConfig& config,
                const std::filesystem::path& path);
FleetSetup load_fleet(const std::filesystem::path& path);

}  // namespace xrbench::fleet
