#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xrbench::fleet {

/// One priority class of the fleet workload. Classes are indexed in
/// priority order: class 0 outranks class 1 in the admission queue (a
/// queued class-0 session is released before any queued class-1 session,
/// regardless of arrival order).
struct PriorityClassSpec {
  /// Relative share of arriving sessions drawn into this class.
  double weight = 1.0;
  /// Admission wait budget: a session whose PREDICTED queue wait at arrival
  /// exceeds this is rejected by the "fleet-queue" admission policy
  /// (admit-all ignores it and queues unboundedly).
  double wait_budget_ms = 100.0;
};

/// Fleet workload + serving-pool description (the [fleet] config section).
/// One FleetConfig describes a stochastic population of user sessions —
/// Poisson arrivals, Zipf-distributed program popularity, weighted priority
/// classes — and the pool they are served by. Everything is derived
/// deterministically from `seed`: the same config replays the same session
/// schedule byte-for-byte at any worker count.
struct FleetConfig {
  std::uint64_t seed = 42;  ///< Fleet master seed (arrivals + per-session).
  /// Poisson session-arrival rate. Offered load in Erlangs is
  /// arrival_rate_per_s x mean session duration / pool_size.
  double arrival_rate_per_s = 4.0;
  /// Zipf popularity exponent over the program catalog (rank 0 = most
  /// popular). 0 = uniform popularity.
  double zipf_s = 1.0;
  /// Number of accelerator instances in the serving pool. Every instance
  /// is a copy of the same design, so one CostTable serves the whole pool.
  std::size_t pool_size = 2;
  /// Sessions arrive in [0, arrival_window_ms); later arrivals are not
  /// generated (the fleet run ends when the last admitted session ends).
  double arrival_window_ms = 4000.0;
  /// Hard cap on generated sessions (guards runaway configs; the window
  /// normally binds first).
  std::size_t max_sessions = 256;
  /// Fleet-level admission policy, resolved through the PolicyRegistry
  /// admission family and consulted once per session at its arrival
  /// ("admit-all" queues everything, "fleet-queue" rejects on blown wait
  /// budgets, "drop-early" is permissive without telemetry).
  std::string admission = "fleet-queue";
  /// Optional per-session policy overrides, applied to the harness options
  /// every session trial runs under ("" = keep the caller's options). A
  /// program naming its own policies still wins, as everywhere else.
  std::string scheduler;
  std::string governor;
  /// Priority classes in rank order; empty = one default class.
  std::vector<PriorityClassSpec> classes;
  /// Program catalog by popularity rank (names resolved against inline
  /// definitions first, then workload::program_by_name). Empty = the
  /// registered extension programs in registry order.
  std::vector<std::string> programs;
};

/// Throws std::invalid_argument on a malformed config: non-positive
/// arrival rate / window / pool size / max_sessions, negative zipf_s,
/// non-positive class weight, or negative wait budget.
void validate_fleet_config(const FleetConfig& config);

}  // namespace xrbench::fleet
