#include "fleet/fleet_report.h"

#include <string>
#include <vector>

#include "util/csv.h"
#include "util/table.h"

namespace xrbench::fleet {
namespace {

std::vector<std::string> stats_row(const std::string& label,
                                   const ServiceStats& stats) {
  return {label,
          util::CsvWriter::cell(stats.offered),
          util::CsvWriter::cell(stats.admitted),
          util::fmt_percent(stats.drop_rate),
          util::fmt_double(stats.qoe_p50),
          util::fmt_double(stats.qoe_p99),
          util::fmt_double(stats.latency_p50_ms, 2),
          util::fmt_double(stats.latency_p99_ms, 2),
          util::fmt_double(stats.wait_p99_ms, 2),
          util::fmt_double(stats.energy_per_session_mj, 2)};
}

std::vector<std::string> resilience_row(const std::string& label,
                                        const runtime::ResilienceStats& res) {
  return {label,
          util::CsvWriter::cell(res.transient_faults),
          util::CsvWriter::cell(res.retries),
          util::CsvWriter::cell(res.retry_give_ups),
          util::CsvWriter::cell(res.outage_kills),
          util::CsvWriter::cell(res.failovers),
          util::CsvWriter::cell(res.resumes),
          util::fmt_double(res.checkpoint_saved_ms, 2),
          util::CsvWriter::cell(res.drops_early),
          util::CsvWriter::cell(res.drops_late)};
}

}  // namespace

void print_fleet_report(std::ostream& os, const FleetResult& result) {
  os << "Fleet: " << result.sessions.size() << " sessions offered over "
     << util::fmt_double(result.config.arrival_window_ms, 0) << " ms, pool of "
     << result.config.pool_size << ", admission '" << result.config.admission
     << "', offered load " << util::fmt_double(result.offered_load, 2)
     << " Erlang\n";
  util::TablePrinter table({"class", "offered", "admitted", "drop", "qoe_p50",
                            "qoe_p99", "lat_p50_ms", "lat_p99_ms",
                            "wait_p99_ms", "mj/session"});
  table.add_row(stats_row("all", result.fleet));
  for (std::size_t cls = 0; cls < result.per_class.size(); ++cls) {
    table.add_row(stats_row("class-" + std::to_string(cls),
                            result.per_class[cls]));
  }
  table.print(os);
  // Resilience breakdown, gated on any session's trial actually running
  // under fault injection — fault-free fleets print exactly what they
  // always did (the fleet-demo byte-identity anchor).
  if (result.fleet.resilience.enabled) {
    os << "Resilience (merged over admitted sessions):\n";
    util::TablePrinter res_table({"class", "faults", "retries", "give-ups",
                                  "kills", "failovers", "resumes", "saved_ms",
                                  "drops_early", "drops_late"});
    res_table.add_row(resilience_row("all", result.fleet.resilience));
    for (std::size_t cls = 0; cls < result.per_class.size(); ++cls) {
      res_table.add_row(resilience_row("class-" + std::to_string(cls),
                                       result.per_class[cls].resilience));
    }
    res_table.print(os);
  }
}

void write_fleet_sessions_csv(const std::filesystem::path& path,
                              const FleetResult& result) {
  util::CsvWriter csv(path);
  // Resilience columns appear only when some session ran under fault
  // injection, so fault-free fleets keep their historical CSV bytes.
  const bool with_resilience = result.fleet.resilience.enabled;
  std::vector<std::string> header = {
      "session", "arrival_ms", "class", "program_rank", "admitted",
      "instance", "start_ms", "wait_ms", "session_qoe", "latency_ms",
      "energy_mj"};
  if (with_resilience) {
    header.insert(header.end(),
                  {"faults", "retries", "kills", "failovers", "resumes",
                   "saved_ms"});
  }
  csv.header(header);
  for (const auto& s : result.sessions) {
    std::vector<std::string> row = {
        util::CsvWriter::cell(static_cast<std::size_t>(s.spec.session_id)),
        util::CsvWriter::cell(s.spec.arrival_ms),
        util::CsvWriter::cell(s.spec.priority_class),
        util::CsvWriter::cell(s.spec.program_rank),
        util::CsvWriter::cell(static_cast<int>(s.admitted)),
        util::CsvWriter::cell(s.instance),
        util::CsvWriter::cell(s.start_ms),
        util::CsvWriter::cell(s.wait_ms),
        util::CsvWriter::cell(s.session_qoe),
        util::CsvWriter::cell(s.latency_ms),
        util::CsvWriter::cell(s.energy_mj)};
    if (with_resilience) {
      const auto& res = s.resilience;
      row.insert(row.end(),
                 {util::CsvWriter::cell(res.transient_faults),
                  util::CsvWriter::cell(res.retries),
                  util::CsvWriter::cell(res.outage_kills),
                  util::CsvWriter::cell(res.failovers),
                  util::CsvWriter::cell(res.resumes),
                  util::CsvWriter::cell(res.checkpoint_saved_ms)});
    }
    csv.row(row);
  }
}

}  // namespace xrbench::fleet
