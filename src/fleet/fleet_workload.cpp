#include "fleet/fleet_workload.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"
#include "util/zipf.h"

namespace xrbench::fleet {

void validate_fleet_config(const FleetConfig& config) {
  if (config.arrival_rate_per_s <= 0.0) {
    throw std::invalid_argument(
        "fleet config: arrival_rate_per_s must be > 0");
  }
  if (config.zipf_s < 0.0) {
    throw std::invalid_argument("fleet config: zipf_s must be >= 0");
  }
  if (config.pool_size == 0) {
    throw std::invalid_argument("fleet config: pool_size must be >= 1");
  }
  if (config.arrival_window_ms <= 0.0) {
    throw std::invalid_argument(
        "fleet config: arrival_window_ms must be > 0");
  }
  if (config.max_sessions == 0) {
    throw std::invalid_argument("fleet config: max_sessions must be >= 1");
  }
  for (const auto& cls : config.classes) {
    if (cls.weight <= 0.0) {
      throw std::invalid_argument("fleet config: class weight must be > 0");
    }
    if (cls.wait_budget_ms < 0.0) {
      throw std::invalid_argument(
          "fleet config: class wait_budget_ms must be >= 0");
    }
  }
}

std::vector<workload::ScenarioProgram> resolve_catalog(
    const FleetConfig& config) {
  std::vector<workload::ScenarioProgram> catalog;
  if (config.programs.empty()) {
    catalog = workload::extension_programs();
  } else {
    catalog.reserve(config.programs.size());
    for (const auto& name : config.programs) {
      catalog.push_back(workload::program_by_name(name));
    }
  }
  if (catalog.empty()) {
    throw std::invalid_argument("fleet config: empty program catalog");
  }
  for (const auto& program : catalog) {
    if (program.total_duration_ms() <= 0.0) {
      throw std::invalid_argument("fleet config: program '" + program.name +
                                  "' has no duration");
    }
  }
  return catalog;
}

std::vector<SessionSpec> FleetWorkload::generate(
    const FleetConfig& config,
    const std::vector<workload::ScenarioProgram>& catalog) {
  validate_fleet_config(config);
  if (catalog.empty()) {
    throw std::invalid_argument("FleetWorkload: empty program catalog");
  }

  const util::ZipfSampler popularity(catalog.size(), config.zipf_s);

  // Class weights, cumulative; an empty class list is one default class.
  std::vector<double> cum_weight;
  double total_weight = 0.0;
  if (config.classes.empty()) {
    cum_weight.push_back(total_weight = 1.0);
  } else {
    for (const auto& cls : config.classes) {
      total_weight += cls.weight;
      cum_weight.push_back(total_weight);
    }
  }

  // One stream, three draws per session in fixed order (gap, rank, class);
  // see the header's determinism contract.
  util::Rng rng(config.seed);
  const double rate_per_ms = config.arrival_rate_per_s / 1000.0;
  std::vector<SessionSpec> sessions;
  double t = 0.0;
  while (sessions.size() < config.max_sessions) {
    t += rng.exponential(rate_per_ms);
    const std::size_t rank = popularity.sample(rng);
    const double cu = rng.uniform() * total_weight;
    if (t >= config.arrival_window_ms) break;
    std::size_t cls = 0;
    while (cls + 1 < cum_weight.size() && cu >= cum_weight[cls]) ++cls;

    SessionSpec spec;
    spec.session_id = static_cast<std::uint64_t>(sessions.size());
    spec.arrival_ms = t;
    spec.program_rank = rank;
    spec.priority_class = cls;
    spec.duration_ms = catalog[rank].total_duration_ms();
    spec.seed = session_seed(config.seed, spec.session_id);
    sessions.push_back(spec);
  }
  return sessions;
}

}  // namespace xrbench::fleet
