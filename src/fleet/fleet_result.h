#pragma once

#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "fleet/fleet_config.h"
#include "fleet/session.h"
#include "runtime/scenario_runner.h"

namespace xrbench::fleet {

/// Outcome of one session: its admission/queueing fate plus (when admitted)
/// the score of its trial run.
struct SessionOutcome {
  SessionSpec spec;
  bool admitted = false;
  double start_ms = 0.0;     ///< Trial start on its instance (0 if rejected).
  double wait_ms = 0.0;      ///< start - arrival (0 if rejected).
  std::size_t instance = 0;  ///< Pool instance the session ran on.
  /// Score of the session's trial run (zeroed when rejected).
  core::ScenarioScore score;
  /// Wait-discounted session QoE: the run's QoE scaled by the share of the
  /// user's intended window actually served, duration / (wait + duration).
  /// Frames the user expected while queued are frames nobody served. 0 for
  /// rejected sessions.
  double session_qoe = 0.0;
  double energy_mj = 0.0;  ///< Trial total energy (0 if rejected).
  /// Session response latency: queue wait + mean executed-inference latency
  /// of the trial. Undefined (0) for rejected sessions — they are excluded
  /// from latency percentiles but counted as drops.
  double latency_ms = 0.0;
  /// Fault-injection counters of the session's trial run (enabled = false
  /// and all-zero for rejected sessions and fault-free fleets).
  runtime::ResilienceStats resilience;
};

/// Cross-session service-quality summary (fleet-wide or per class).
///
/// Percentile convention: latencies and waits use the usual high tail
/// (p99 = 99th percentile, the value 99% of sessions stay UNDER). QoE is
/// higher-is-better, so its p99 is the LOW tail — the QoE that 99% of
/// sessions meet or exceed (percentile 1 of the ascending distribution).
/// Rejected sessions count as QoE 0 (service denied is the worst service).
struct ServiceStats {
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  double drop_rate = 0.0;  ///< rejected / offered (0 when nothing offered).
  double qoe_p50 = 0.0;
  double qoe_p99 = 0.0;  ///< Low-tail: 99% of sessions meet or exceed this.
  double mean_qoe = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double wait_p50_ms = 0.0;
  double wait_p99_ms = 0.0;
  double energy_per_session_mj = 0.0;  ///< Mean over admitted sessions.
  /// Fault-injection counters merged over the covered sessions' trials
  /// (enabled stays false for fault-free fleets, gating report output).
  runtime::ResilienceStats resilience;
};

/// Complete outcome of one fleet simulation. Sessions are merged in
/// session-id (= submission) order, so serial and parallel runs are
/// byte-identical at any worker count — the fleet extends the SweepEngine
/// determinism contract unchanged.
struct FleetResult {
  FleetConfig config;  ///< The config this result was produced from.
  /// Offered load in Erlangs: arrival rate x mean offered session duration
  /// / pool size (>1 = overload).
  double offered_load = 0.0;
  std::vector<SessionOutcome> sessions;  ///< Session-id order.
  ServiceStats fleet;                    ///< All classes pooled.
  std::vector<ServiceStats> per_class;   ///< One entry per priority class.
  /// Raw run of the LAST admitted session (the ScenarioOutcome::last_run
  /// analogue; the single-session compatibility anchor byte-compares it).
  runtime::ScenarioRunResult last_run;
};

}  // namespace xrbench::fleet
