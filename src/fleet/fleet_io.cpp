#include "fleet/fleet_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fleet/fleet_workload.h"
#include "util/ini.h"
#include "workload/scenario_io.h"

namespace xrbench::fleet {
namespace {

[[noreturn]] void reject(const std::string& what, int line) {
  throw std::invalid_argument("fleet config: " + what + " (line " +
                              std::to_string(line) + ")");
}

/// get_double with the key's source line appended to parse failures (the
/// ini layer reports section+key but not where).
double get_double_at(const util::IniDocument::Section& sec,
                     const std::string& key) {
  try {
    return sec.get_double(key);
  } catch (const std::invalid_argument& e) {
    reject(e.what(), sec.line_of(key));
  }
}

std::int64_t get_int_at(const util::IniDocument::Section& sec,
                        const std::string& key) {
  try {
    return sec.get_int(key);
  } catch (const std::invalid_argument& e) {
    reject(e.what(), sec.line_of(key));
  }
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_names(const std::string& csv, int line) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    const std::string name = trim(csv.substr(start, end - start));
    if (name.empty()) reject("empty program name in 'programs'", line);
    names.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

void parse_fleet_section(const util::IniDocument::Section& sec,
                         FleetConfig& config) {
  for (const auto& entry : sec.entries) {
    const std::string& key = entry.key;
    if (key == "seed") {
      const std::int64_t seed = get_int_at(sec, key);
      if (seed < 0) reject("seed must be >= 0", sec.line_of(key));
      config.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "arrival_rate_per_s") {
      config.arrival_rate_per_s = get_double_at(sec, key);
      if (config.arrival_rate_per_s <= 0.0) {
        reject("arrival_rate_per_s must be > 0", sec.line_of(key));
      }
    } else if (key == "zipf_s") {
      config.zipf_s = get_double_at(sec, key);
      if (config.zipf_s < 0.0) reject("zipf_s must be >= 0", sec.line_of(key));
    } else if (key == "pool_size") {
      const std::int64_t n = get_int_at(sec, key);
      if (n < 1) reject("pool_size must be >= 1", sec.line_of(key));
      config.pool_size = static_cast<std::size_t>(n);
    } else if (key == "arrival_window_ms") {
      config.arrival_window_ms = get_double_at(sec, key);
      if (config.arrival_window_ms <= 0.0) {
        reject("arrival_window_ms must be > 0", sec.line_of(key));
      }
    } else if (key == "max_sessions") {
      const std::int64_t n = get_int_at(sec, key);
      if (n < 1) reject("max_sessions must be >= 1", sec.line_of(key));
      config.max_sessions = static_cast<std::size_t>(n);
    } else if (key == "admission") {
      config.admission = trim(entry.value);
    } else if (key == "scheduler") {
      config.scheduler = trim(entry.value);
    } else if (key == "governor") {
      config.governor = trim(entry.value);
    } else if (key == "programs") {
      config.programs = split_names(entry.value, sec.line_of(key));
    } else {
      reject("unknown [fleet] key '" + key + "'", entry.line);
    }
  }
}

PriorityClassSpec parse_class_section(
    const util::IniDocument::Section& sec) {
  PriorityClassSpec cls;
  for (const auto& entry : sec.entries) {
    if (entry.key == "weight") {
      cls.weight = get_double_at(sec, entry.key);
      if (cls.weight <= 0.0) {
        reject("class weight must be > 0", sec.line_of(entry.key));
      }
    } else if (entry.key == "wait_budget_ms") {
      cls.wait_budget_ms = get_double_at(sec, entry.key);
      if (cls.wait_budget_ms < 0.0) {
        reject("class wait_budget_ms must be >= 0", sec.line_of(entry.key));
      }
    } else {
      reject("unknown [class] key '" + entry.key + "'", entry.line);
    }
  }
  return cls;
}

}  // namespace

std::string to_config_text(const FleetConfig& config) {
  util::IniDocument doc;
  auto& fleet = doc.add_section("fleet");
  fleet.set("seed", std::to_string(config.seed));
  fleet.set_double("arrival_rate_per_s", config.arrival_rate_per_s);
  fleet.set_double("zipf_s", config.zipf_s);
  fleet.set_int("pool_size", static_cast<std::int64_t>(config.pool_size));
  fleet.set_double("arrival_window_ms", config.arrival_window_ms);
  fleet.set_int("max_sessions",
                static_cast<std::int64_t>(config.max_sessions));
  fleet.set("admission", config.admission);
  if (!config.scheduler.empty()) fleet.set("scheduler", config.scheduler);
  if (!config.governor.empty()) fleet.set("governor", config.governor);
  if (!config.programs.empty()) {
    std::string joined;
    for (const auto& name : config.programs) {
      if (!joined.empty()) joined += ", ";
      joined += name;
    }
    fleet.set("programs", joined);
  }
  for (const auto& cls : config.classes) {
    auto& sec = doc.add_section("class");
    sec.set_double("weight", cls.weight);
    sec.set_double("wait_budget_ms", cls.wait_budget_ms);
  }
  return doc.to_string();
}

FleetSetup fleet_from_config_text(const std::string& text) {
  const auto doc = util::IniDocument::parse(text);
  if (!doc.has_section("fleet")) {
    throw std::invalid_argument("fleet config: missing [fleet] section");
  }

  FleetSetup setup;
  parse_fleet_section(doc.section("fleet"), setup.config);

  // Sections beyond [fleet]/[class] belong to the inline session-program
  // grammar; anything else is a typo worth a line number.
  bool has_program_sections = false;  // anything the program grammar owns
  for (const auto& sec : doc.all_sections()) {
    if (sec.name == "fleet") continue;
    if (sec.name == "class") {
      setup.config.classes.push_back(parse_class_section(sec));
    } else if (sec.name == "program" || sec.name == "phase" ||
               sec.name == "faults") {
      // A [phase]/[faults] without a [program] must reach the program
      // parser so it is rejected with its source line, not ignored.
      has_program_sections = true;
    } else if (sec.name != "scenario" && sec.name != "model") {
      reject("unexpected [" + sec.name + "] section", sec.line);
    }
  }

  std::vector<workload::ScenarioProgram> inline_programs;
  if (has_program_sections) {
    inline_programs = workload::programs_from_document(doc);
  }

  if (!setup.config.programs.empty()) {
    // Named catalog: inline definitions first, then the registry.
    for (const auto& name : setup.config.programs) {
      const workload::ScenarioProgram* found = nullptr;
      for (const auto& program : inline_programs) {
        if (program.name == name) {
          found = &program;
          break;
        }
      }
      setup.catalog.push_back(found != nullptr
                                  ? *found
                                  : workload::program_by_name(name));
    }
  } else if (!inline_programs.empty()) {
    setup.catalog = std::move(inline_programs);
  } else {
    setup.catalog = resolve_catalog(setup.config);
  }
  for (const auto& program : setup.catalog) {
    if (program.total_duration_ms() <= 0.0) {
      throw std::invalid_argument("fleet config: program '" + program.name +
                                  "' has no duration");
    }
  }

  validate_fleet_config(setup.config);
  return setup;
}

void save_fleet(const FleetConfig& config,
                const std::filesystem::path& path) {
  util::IniDocument::parse(to_config_text(config)).save(path);
}

FleetSetup load_fleet(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("fleet config: cannot read " + path.string());
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return fleet_from_config_text(ss.str());
}

}  // namespace xrbench::fleet
