#pragma once

#include <vector>

#include "fleet/fleet_config.h"
#include "fleet/session.h"
#include "workload/scenario_program.h"

namespace xrbench::fleet {

/// Resolves the config's program catalog: each name against
/// workload::program_by_name (inline definitions are handled by fleet_io
/// before this is reached); an empty list yields the registered extension
/// programs in registry order. Throws on an empty resolution or a
/// zero-duration program (its service time would be degenerate).
std::vector<workload::ScenarioProgram> resolve_catalog(
    const FleetConfig& config);

/// Stochastic session-population generator (the rdma-dm-sim WorkloadRunner
/// shape): Poisson arrivals x Zipf program popularity x weighted priority
/// classes, all drawn from ONE deterministic stream seeded by config.seed.
///
/// Determinism contract: exactly three uniform draws per session, in the
/// fixed order (interarrival gap, popularity, class), so the i-th session's
/// draws are identical across runs, worker counts and arrival-rate changes
/// (rates scale the gap but never re-consume the stream) — enforced by
/// test_zipf / test_fleet.
struct FleetWorkload {
  /// Generates the session schedule for `config` against a resolved
  /// catalog, in arrival order (ids 0..n-1). Stops at the arrival window or
  /// max_sessions, whichever binds first.
  static std::vector<SessionSpec> generate(
      const FleetConfig& config,
      const std::vector<workload::ScenarioProgram>& catalog);
};

}  // namespace xrbench::fleet
