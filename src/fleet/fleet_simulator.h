#pragma once

#include <cstddef>

#include "core/harness.h"
#include "core/sweep.h"
#include "fleet/fleet_config.h"
#include "fleet/fleet_result.h"
#include "fleet/fleet_workload.h"
#include "hw/accelerator.h"

namespace xrbench::fleet {

/// Fleet-scale serving simulation: many concurrent user sessions over a
/// shared pool of accelerator instances, sessions-as-trials.
///
/// A fleet run has two stages, both deterministic in the fleet seed:
///
///  1. Schedule. FleetWorkload::generate draws the session population; a
///     priority admission queue then assigns every session its fate. The
///     pool is `pool_size` identical instances; a session's service time is
///     its program's total duration, known at arrival, so the queue is an
///     exact serial simulation (no heavy trial work): arrivals start
///     immediately when an instance is free, otherwise they join a backlog
///     ordered by (class, arrival, id) — a higher class preempts the queue
///     POSITION of lower classes, never a running session — and instances
///     release the backlog head as they free (staged release). The
///     configured admission policy (PolicyRegistry family) is consulted
///     once per session at arrival with its predicted start time;
///     "fleet-queue" rejects sessions whose predicted wait blows their
///     class budget, "admit-all" queues unboundedly.
///
///  2. Execution. Every admitted session becomes ONE SweepEngine program
///     trial (seed = fleet_seed XOR golden-stride(session_id)) bound to its
///     pool instance, fanned out over the worker pool through
///     run_program_points — all instances are copies of one design, so the
///     whole pool shares a single CostTable build. Results merge in
///     session-id order: serial and parallel fleet runs are byte-identical
///     at any worker count (test-enforced at 0/1/2/4/8).
///
/// A single-session fleet under admit-all is bit-identical to the
/// equivalent standalone run_program trial (the compatibility anchor).
class FleetSimulator {
 public:
  /// Worker count from XRBENCH_THREADS / hardware concurrency.
  FleetSimulator() = default;
  /// Explicit worker count; 0 runs every trial inline (serial baseline).
  explicit FleetSimulator(std::size_t num_threads) : engine_(num_threads) {}

  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  std::size_t num_threads() const { return engine_.num_threads(); }

  /// Runs the fleet described by `config` on a pool of `system` copies.
  /// `base` carries the per-session harness options (scoring constants,
  /// in-run policies, fault profile); config.scheduler/governor override
  /// its policy names when set, and a program's own names win over both.
  /// dynamic_trials is ignored — a session is exactly one trial.
  FleetResult run(const FleetConfig& config,
                  const hw::AcceleratorSystem& system,
                  const core::HarnessOptions& base = {});

  /// Same, with an explicit program catalog in popularity-rank order (the
  /// fleet_io path: inline program definitions never reach the registry, so
  /// config.programs alone cannot resolve them).
  FleetResult run(const FleetConfig& config,
                  const std::vector<workload::ScenarioProgram>& catalog,
                  const hw::AcceleratorSystem& system,
                  const core::HarnessOptions& base = {});

 private:
  core::SweepEngine engine_;
};

}  // namespace xrbench::fleet
