#pragma once

#include <filesystem>
#include <ostream>

#include "fleet/fleet_result.h"

namespace xrbench::fleet {

/// Prints the fleet service-quality report: the offered-load headline, a
/// fleet-wide summary row and one row per priority class (offered /
/// admitted / dropped, QoE p50 + low-tail p99, latency and wait
/// percentiles, energy per session).
void print_fleet_report(std::ostream& os, const FleetResult& result);

/// Dumps the per-session ledger to CSV (session, arrival, class, program
/// rank, admitted, instance, start, wait, qoe, latency, energy) — one row
/// per offered session in id order, rejected sessions included.
void write_fleet_sessions_csv(const std::filesystem::path& path,
                              const FleetResult& result);

}  // namespace xrbench::fleet
