#pragma once

#include <cstddef>
#include <cstdint>

namespace xrbench::fleet {

/// One user session drawn from the fleet workload: WHO arrives WHEN, runs
/// WHICH program, at WHAT priority. Pure data — the admission queue and the
/// per-session trial both consume it.
struct SessionSpec {
  std::uint64_t session_id = 0;  ///< Arrival order, 0-based.
  double arrival_ms = 0.0;       ///< Poisson arrival instant.
  std::size_t program_rank = 0;  ///< Zipf popularity rank into the catalog.
  std::size_t priority_class = 0;  ///< Class index (0 = highest priority).
  /// Service time: the program's total phase duration. Known at arrival, so
  /// the admission queue is an exact deterministic simulation.
  double duration_ms = 0.0;
  /// Per-session trial seed (see session_seed): the session IS one
  /// SweepEngine-style trial of its program at this seed.
  std::uint64_t seed = 0;
};

/// Deterministic per-session trial seed: the fleet seed XOR a golden-ratio
/// stride of the session id (the same odd constant PR 4 strides phase seed
/// offsets with), so consecutive sessions land far apart in seed space and
/// never replay each other's jitter/control-flow streams.
inline std::uint64_t session_seed(std::uint64_t fleet_seed,
                                  std::uint64_t session_id) {
  constexpr std::uint64_t kGoldenStride = 0x9E3779B97F4A7C15ull;
  return fleet_seed ^ ((session_id + 1) * kGoldenStride);
}

}  // namespace xrbench::fleet
