#pragma once

// Minimal vendored stand-in for google-benchmark, used when the system
// library is absent so bench_microbench always builds (CI included). It
// implements only the surface the repo's microbenchmarks use:
//
//   BENCHMARK(fn)->Arg(n)->DenseRange(lo, hi);
//   BENCHMARK_MAIN();
//   for (auto _ : state) { ... }
//   state.range(i), state.SetLabel(...), benchmark::DoNotOptimize(...)
//
// Timing model: each benchmark body is re-run with a doubling iteration
// count until it has consumed at least the --benchmark_min_time budget
// (default 0.1 s), then mean ns/iteration is reported. No statistics,
// counters, JSON output, or thread support — install google-benchmark for
// the real harness; results from this shim are indicative only.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

#if defined(__GNUC__) || defined(__clang__)
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}
#else
template <typename T>
inline void DoNotOptimize(T&& value) {
  // Fallback: escape through a volatile pointer write.
  static volatile const void* sink;
  sink = &value;
  (void)sink;
}
#endif

inline void ClobberMemory() {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : : "memory");
#endif
}

class State {
 public:
  State(std::int64_t iterations, std::vector<std::int64_t> args)
      : iterations_(iterations), args_(std::move(args)) {}

  /// Iterates exactly `iterations_` times; the harness times the whole loop.
  class iterator {
   public:
    explicit iterator(std::int64_t remaining) : remaining_(remaining) {}
    bool operator!=(const iterator& o) const {
      return remaining_ != o.remaining_;
    }
    iterator& operator++() {
      --remaining_;
      return *this;
    }
    struct Unit {};
    Unit operator*() const { return {}; }

   private:
    std::int64_t remaining_;
  };

  iterator begin() { return iterator(iterations_); }
  iterator end() { return iterator(0); }

  std::int64_t range(std::size_t i = 0) const {
    return i < args_.size() ? args_[i] : 0;
  }

  void SetLabel(const std::string& label) { label_ = label; }
  const std::string& label() const { return label_; }
  std::int64_t iterations() const { return iterations_; }

 private:
  std::int64_t iterations_;
  std::vector<std::int64_t> args_;
  std::string label_;
};

using Function = void (*)(State&);

class Benchmark;
inline std::vector<Benchmark*>& registry() {
  static std::vector<Benchmark*> benches;
  return benches;
}

class Benchmark {
 public:
  Benchmark(const char* name, Function fn) : name_(name), fn_(fn) {
    registry().push_back(this);
  }

  Benchmark* Arg(std::int64_t a) {
    arg_sets_.push_back({a});
    return this;
  }

  Benchmark* Args(std::vector<std::int64_t> as) {
    arg_sets_.push_back(std::move(as));
    return this;
  }

  Benchmark* DenseRange(std::int64_t lo, std::int64_t hi,
                        std::int64_t step = 1) {
    for (std::int64_t v = lo; v <= hi; v += step) arg_sets_.push_back({v});
    return this;
  }

  const char* name() const { return name_; }
  Function fn() const { return fn_; }
  const std::vector<std::vector<std::int64_t>>& arg_sets() const {
    return arg_sets_;
  }

 private:
  const char* name_;
  Function fn_;
  std::vector<std::vector<std::int64_t>> arg_sets_;
};

inline double& min_time() {
  static double t = 0.1;  // seconds, as google-benchmark's default order
  return t;
}

inline void Initialize(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--benchmark_min_time=", 21) == 0) {
      // Accepts plain seconds ("0.05") and google-benchmark 1.8's "0.05s".
      min_time() = std::strtod(a + 21, nullptr);
      if (min_time() <= 0.0) min_time() = 0.1;
    } else if (std::strncmp(a, "--benchmark_", 12) == 0) {
      // Other benchmark flags are accepted and ignored.
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

inline void run_one(const Benchmark& bench,
                    const std::vector<std::int64_t>& args) {
  using clock = std::chrono::steady_clock;
  std::string name = bench.name();
  for (std::int64_t a : args) name += "/" + std::to_string(a);

  std::int64_t iters = 1;
  double elapsed_s = 0.0;
  std::string label;
  for (;;) {
    State state(iters, args);
    const auto t0 = clock::now();
    bench.fn()(state);
    elapsed_s = std::chrono::duration<double>(clock::now() - t0).count();
    label = state.label();
    if (elapsed_s >= min_time() || iters >= (1ll << 30)) break;
    // Aim past the budget with headroom; at least double.
    const double target =
        elapsed_s > 0.0 ? 1.4 * min_time() / elapsed_s * iters : iters * 8.0;
    iters = std::max<std::int64_t>(iters * 2, static_cast<std::int64_t>(target));
  }
  const double ns = elapsed_s * 1e9 / static_cast<double>(iters);
  std::printf("%-40s %12.1f ns %12lld iters", name.c_str(), ns,
              static_cast<long long>(iters));
  if (!label.empty()) std::printf("  %s", label.c_str());
  std::printf("\n");
}

inline int RunSpecifiedBenchmarks() {
  std::printf("(vendored benchmark shim — install google-benchmark for the "
              "full harness)\n");
  std::printf("%-40s %15s %18s\n", "Benchmark", "Time", "Iterations");
  std::printf("%s\n", std::string(75, '-').c_str());
  for (const Benchmark* b : registry()) {
    if (b->arg_sets().empty()) {
      run_one(*b, {});
    } else {
      for (const auto& args : b->arg_sets()) run_one(*b, args);
    }
  }
  return 0;
}

inline void Shutdown() {}

}  // namespace benchmark

#define BENCHMARK_SHIM_CONCAT2(a, b) a##b
#define BENCHMARK_SHIM_CONCAT(a, b) BENCHMARK_SHIM_CONCAT2(a, b)
#define BENCHMARK(fn)                                          \
  static ::benchmark::Benchmark* BENCHMARK_SHIM_CONCAT(        \
      benchmark_shim_reg_, __LINE__) = (new ::benchmark::Benchmark(#fn, fn))

#define BENCHMARK_MAIN()                         \
  int main(int argc, char** argv) {              \
    ::benchmark::Initialize(&argc, argv);        \
    return ::benchmark::RunSpecifiedBenchmarks(); \
  }
